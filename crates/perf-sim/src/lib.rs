//! # perf-sim
//!
//! A `perf_event_open(2)` / libpfm4-like hardware-performance-counter
//! interface over the simulated kernel — the "HPC" and "libpfm4" boxes of
//! the paper's Figures 1 and 2.
//!
//! What it reproduces from the real stack:
//!
//! * the **generic event set** of the `perf_event_open` man page the paper
//!   cites (`instructions`, `cache-references`, `cache-misses`, …), plus
//!   **architecture-specific raw events** with vendor-dependent
//!   availability — the portability problem that motivates the paper's
//!   choice of generic counters;
//! * **per-process counting**: a counter follows its target pid across
//!   CPUs, counting only while a thread of that pid runs;
//! * a **finite number of hardware counter slots** per logical CPU with
//!   round-robin **multiplexing** and `time_enabled`/`time_running`
//!   scaling, the accuracy/overhead trade-off the paper discusses;
//! * name-based event resolution (libpfm4 style).
//!
//! ```
//! use os_sim::kernel::Kernel;
//! use os_sim::task::SteadyTask;
//! use perf_sim::pfm::Pfm;
//! use perf_sim::session::PerfSession;
//! use simcpu::{presets, Nanos};
//! use simcpu::workunit::WorkUnit;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut kernel = Kernel::new(presets::intel_i3_2120());
//! let pid = kernel.spawn("app", vec![SteadyTask::boxed(WorkUnit::cpu_intensive(1.0))]);
//!
//! let pfm = Pfm::for_machine(kernel.machine().config());
//! let mut session = PerfSession::new(4);
//! let id = session.open(pid, pfm.resolve("instructions")?)?;
//! for _ in 0..10 {
//!     let report = kernel.tick(Nanos::from_millis(1));
//!     session.observe(&report);
//! }
//! assert!(session.read(id)?.scaled > 0);
//! # Ok(())
//! # }
//! ```

pub mod events;
pub mod monitor;
pub mod pfm;
pub mod sampling;
pub mod session;

mod error;

pub use error::Error;
pub use events::Event;
pub use session::{CounterId, PerfSession, ScaledValue};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;
