//! Sampling mode: period-based overflow sampling, the `perf record` side
//! of the perf interface. A sampling counter fires a [`SampleRecord`]
//! every `period` events into a fixed-size ring buffer; when user space
//! drains too slowly, records are dropped and counted — the same
//! semantics (and failure mode) as the kernel's mmap ring.
//!
//! PowerAPI itself only needs counting mode, but sampling is what a
//! code-level attribution extension (the paper's "power estimations at
//! process and code-level" ambition) would build on.

use crate::events::Event;
use crate::{Error, Result};
use os_sim::kernel::KernelReport;
use os_sim::process::Pid;
use simcpu::units::{CpuId, Nanos};
use std::collections::VecDeque;

/// One overflow sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleRecord {
    /// Time of the tick in which the overflow happened.
    pub timestamp: Nanos,
    /// The sampled process.
    pub pid: Pid,
    /// The CPU the overflowing slice ran on.
    pub cpu: CpuId,
    /// The counter value at overflow (a multiple of the period).
    pub value: u64,
}

/// A period-based sampling session for one (pid, event) pair.
#[derive(Debug, Clone)]
pub struct Sampler {
    pid: Pid,
    event: Event,
    period: u64,
    accumulated: u64,
    emitted: u64,
    ring: VecDeque<SampleRecord>,
    capacity: usize,
    lost: u64,
}

impl Sampler {
    /// Opens a sampler firing every `period` events, buffering at most
    /// `capacity` records.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for a zero period or capacity.
    pub fn open(pid: Pid, event: Event, period: u64, capacity: usize) -> Result<Sampler> {
        if period == 0 {
            return Err(Error::InvalidConfig("sample period must be > 0"));
        }
        if capacity == 0 {
            return Err(Error::InvalidConfig("ring capacity must be > 0"));
        }
        Ok(Sampler {
            pid,
            event,
            period,
            accumulated: 0,
            emitted: 0,
            ring: VecDeque::with_capacity(capacity),
            capacity,
            lost: 0,
        })
    }

    /// The sampled event.
    pub fn event(&self) -> Event {
        self.event
    }

    /// The sampling period in events.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Records dropped because the ring was full.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Feeds one kernel tick.
    pub fn observe(&mut self, report: &KernelReport) {
        let Some(target) = self.event.counter() else {
            return;
        };
        for rec in &report.records {
            if rec.pid != self.pid {
                continue;
            }
            self.accumulated += rec.delta.get(target);
            while self.accumulated >= self.period {
                self.accumulated -= self.period;
                self.emitted += 1;
                let sample = SampleRecord {
                    timestamp: report.now,
                    pid: rec.pid,
                    cpu: rec.cpu,
                    value: self.emitted * self.period,
                };
                if self.ring.len() == self.capacity {
                    self.ring.pop_front();
                    self.lost += 1;
                }
                self.ring.push_back(sample);
            }
        }
    }

    /// Drains the buffered records (oldest first).
    pub fn take_records(&mut self) -> Vec<SampleRecord> {
        self.ring.drain(..).collect()
    }

    /// Number of records currently buffered.
    pub fn pending(&self) -> usize {
        self.ring.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use os_sim::kernel::Kernel;
    use os_sim::task::SteadyTask;
    use simcpu::counters::HwCounter;
    use simcpu::presets;
    use simcpu::workunit::WorkUnit;

    const MS: Nanos = Nanos(1_000_000);

    fn busy_kernel() -> (Kernel, Pid) {
        let mut k = Kernel::new(presets::intel_i3_2120());
        let pid = k.spawn("app", vec![SteadyTask::boxed(WorkUnit::cpu_intensive(1.0))]);
        (k, pid)
    }

    #[test]
    fn validation() {
        assert!(Sampler::open(Pid(1), Event::Hardware(HwCounter::Cycles), 0, 8).is_err());
        assert!(Sampler::open(Pid(1), Event::Hardware(HwCounter::Cycles), 100, 0).is_err());
        let s = Sampler::open(Pid(1), Event::Hardware(HwCounter::Cycles), 100, 8).unwrap();
        assert_eq!(s.period(), 100);
        assert_eq!(s.event(), Event::Hardware(HwCounter::Cycles));
    }

    #[test]
    fn overflow_rate_matches_event_rate() {
        let (mut k, pid) = busy_kernel();
        // ~1.6-3.3e6 cycles per ms tick; a 1e6 period fires 1-3 times per
        // tick.
        let mut s =
            Sampler::open(pid, Event::Hardware(HwCounter::Cycles), 1_000_000, 4096).unwrap();
        let mut total_cycles = 0u64;
        for _ in 0..50 {
            let r = k.tick(MS);
            total_cycles += r.records.iter().map(|x| x.delta.cycles).sum::<u64>();
            s.observe(&r);
        }
        let records = s.take_records();
        let expected = total_cycles / 1_000_000;
        assert!(
            (records.len() as i64 - expected as i64).abs() <= 1,
            "{} records for {} expected overflows",
            records.len(),
            expected
        );
        // Values are cumulative multiples of the period.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.value, (i as u64 + 1) * 1_000_000);
            assert_eq!(r.pid, pid);
        }
        assert_eq!(s.lost(), 0);
        assert_eq!(s.pending(), 0, "drained");
    }

    #[test]
    fn slow_reader_loses_oldest_records() {
        let (mut k, pid) = busy_kernel();
        let mut s = Sampler::open(pid, Event::Hardware(HwCounter::Cycles), 100_000, 8).unwrap();
        for _ in 0..20 {
            s.observe(&k.tick(MS));
        }
        assert!(s.lost() > 0, "tiny ring must overflow");
        let records = s.take_records();
        assert_eq!(records.len(), 8, "ring keeps the newest 8");
        // The survivors are the most recent (highest values), in order.
        for w in records.windows(2) {
            assert!(w[1].value > w[0].value);
        }
    }

    #[test]
    fn samples_only_the_target_pid() {
        let mut k = Kernel::new(presets::intel_i3_2120());
        let target = k.spawn("t", vec![SteadyTask::boxed(WorkUnit::cpu_intensive(1.0))]);
        let _other = k.spawn("o", vec![SteadyTask::boxed(WorkUnit::cpu_intensive(1.0))]);
        let mut s = Sampler::open(
            target,
            Event::Hardware(HwCounter::Instructions),
            500_000,
            256,
        )
        .unwrap();
        for _ in 0..10 {
            s.observe(&k.tick(MS));
        }
        assert!(s.take_records().iter().all(|r| r.pid == target));
    }

    #[test]
    fn unknown_raw_event_never_fires() {
        let (mut k, pid) = busy_kernel();
        let mut s = Sampler::open(pid, Event::Raw(0xdead), 1, 8).unwrap();
        for _ in 0..5 {
            s.observe(&k.tick(MS));
        }
        assert_eq!(s.pending(), 0);
    }
}
