use crate::session::CounterId;
use std::fmt;

/// Error type for fallible `perf-sim` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The event name could not be resolved on this architecture.
    UnknownEvent(String),
    /// The event exists but is not supported by this architecture's PMU.
    UnsupportedEvent {
        /// The event name as resolved.
        event: String,
        /// The architecture it was requested on.
        arch: String,
    },
    /// The counter id is not (or no longer) open.
    BadCounter(CounterId),
    /// A configuration value was invalid.
    InvalidConfig(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownEvent(name) => write!(f, "unknown event name: {name}"),
            Error::UnsupportedEvent { event, arch } => {
                write!(f, "event {event} is not supported on {arch}")
            }
            Error::BadCounter(id) => write!(f, "counter {id:?} is not open"),
            Error::InvalidConfig(msg) => write!(f, "invalid perf config: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            Error::UnknownEvent("bogus".to_string()),
            Error::UnsupportedEvent {
                event: "stalled-cycles-backend".to_string(),
                arch: "Core2".to_string(),
            },
            Error::BadCounter(CounterId(3)),
            Error::InvalidConfig("slots must be > 0"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Error>();
    }
}
