//! Shared harness for the experiment binaries (`e1`–`e5`, one per paper
//! table/figure) and the Criterion micro-benchmarks. Each binary prints
//! the paper's numbers next to the reproduction's so the comparison is
//! one `cargo run` away.

pub mod args;
pub mod chaos;
pub mod fleetsim;
pub mod golden;

pub use args::BenchArgs;
pub use golden::Golden;

use mathkit::metrics::ErrorReport;
use os_sim::kernel::Kernel;
use os_sim::task::TaskBehavior;
use perf_sim::events::{Event, PAPER_EVENTS};
use powerapi::formula::PowerFormula;
use powerapi::runtime::{PowerApi, RunOutcome};
use simcpu::machine::MachineConfig;
use simcpu::units::Nanos;

/// Everything an estimation-accuracy evaluation needs.
pub struct Evaluation {
    /// Machine to run on.
    pub machine: MachineConfig,
    /// Process name for the workload.
    pub name: String,
    /// The workload's threads.
    pub tasks: Vec<Box<dyn TaskBehavior>>,
    /// How long to run.
    pub duration: Nanos,
    /// Scheduler quantum.
    pub quantum: Nanos,
    /// Monitoring/estimation period.
    pub clock: Nanos,
    /// HPC events the sensor counts (must cover the formula's needs).
    pub events: Vec<Event>,
    /// PMU slots available.
    pub slots: usize,
}

impl Evaluation {
    /// A default evaluation harness: 1 ms quantum, 1 s estimates.
    pub fn new(
        machine: MachineConfig,
        name: impl Into<String>,
        tasks: Vec<Box<dyn TaskBehavior>>,
        duration: Nanos,
    ) -> Evaluation {
        Evaluation {
            machine,
            name: name.into(),
            tasks,
            duration,
            quantum: Nanos::from_millis(1),
            clock: Nanos::from_secs(1),
            events: PAPER_EVENTS.to_vec(),
            slots: 4,
        }
    }

    /// Runs the workload under a formula and returns the raw outcome
    /// (estimate + meter traces).
    ///
    /// # Errors
    ///
    /// Propagates middleware errors.
    pub fn run(self, formula: impl PowerFormula + 'static) -> Result<RunOutcome, powerapi::Error> {
        let mut kernel = Kernel::new(self.machine);
        let pid = kernel.spawn(self.name, self.tasks);
        let mut papi = PowerApi::builder(kernel)
            .formula(formula)
            .events(self.events)
            .slots(self.slots)
            .report_to_memory()
            .quantum(self.quantum)
            .clock_period(self.clock)
            .build()?;
        papi.monitor(pid)?;
        papi.run_for(self.duration)?;
        papi.finish()
    }

    /// Runs and scores the formula against the meter.
    ///
    /// # Errors
    ///
    /// Propagates middleware/metric errors.
    pub fn score(
        self,
        formula: impl PowerFormula + 'static,
    ) -> Result<ErrorReport, powerapi::Error> {
        let outcome = self.run(formula)?;
        score_outcome(&outcome)
    }
}

/// Aligns an outcome's meter and estimate traces and computes the error
/// metrics (meter = actual, estimate = predicted).
///
/// # Errors
///
/// Metric errors propagate (e.g. empty traces).
pub fn score_outcome(outcome: &RunOutcome) -> Result<ErrorReport, powerapi::Error> {
    let meter = outcome.meter_trace();
    let est = outcome.estimate_trace();
    let (actual, predicted) = meter.align(&est);
    Ok(ErrorReport::compute(&actual, &predicted)?)
}

/// Parses the optional `--dump-trace <path>` flag the experiment
/// binaries share: after the run, the pipeline's Chrome trace-event
/// JSON is written to `<path>` for Perfetto / `chrome://tracing`.
/// (Thin wrapper over [`BenchArgs::parse`] for binaries that only need
/// this one flag.)
///
/// # Panics
///
/// Panics when `--dump-trace` is the last argument (no path follows).
pub fn dump_trace_flag() -> Option<std::path::PathBuf> {
    BenchArgs::parse().dump_trace
}

/// Writes the hub's Chrome trace-event JSON to `path` (creating parent
/// directories as needed) and prints where it went.
///
/// # Panics
///
/// Panics when the directory or file cannot be written.
pub fn dump_trace(telemetry: &powerapi::telemetry::Telemetry, path: &std::path::Path) {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("create --dump-trace directory");
    }
    std::fs::write(path, powerapi::telemetry::chrome_trace_from(telemetry))
        .expect("write --dump-trace file");
    println!("        wrote Chrome trace to {}", path.display());
}

/// Prints a two-column ruled table row.
pub fn row(label: &str, value: impl std::fmt::Display) {
    println!("  {label:<42} {value}");
}

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;
    use os_sim::task::SteadyTask;
    use powerapi::formula::per_freq::PerFrequencyFormula;
    use powerapi::model::power_model::PerFrequencyPowerModel;
    use simcpu::presets;
    use simcpu::workunit::WorkUnit;

    #[test]
    fn evaluation_produces_scores() {
        let eval = Evaluation {
            quantum: Nanos::from_millis(5),
            clock: Nanos::from_millis(500),
            ..Evaluation::new(
                presets::intel_i3_2120(),
                "t",
                vec![SteadyTask::boxed(WorkUnit::cpu_intensive(1.0))],
                Nanos::from_secs(3),
            )
        };
        let report = eval
            .score(PerFrequencyFormula::new(
                PerFrequencyPowerModel::paper_i3_example(),
            ))
            .unwrap();
        assert!(report.median_ape.is_finite());
        assert!(report.median_ape >= 0.0);
    }
}
