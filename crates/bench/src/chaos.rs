//! Shared chaos-injection pieces for the fault experiments (E7's chaos
//! replay and E10's black-box flight recorder): the actor-panic monkey,
//! the panic-hook silencer, and the seeded fault schedule both binaries
//! replay so their runs are comparable event-for-event.

use powerapi::actor::{Actor, Context};
use powerapi::msg::Message;
use simcpu::fault::{FaultKind, FaultPlan, FaultPlanConfig};
use simcpu::units::Nanos;
use std::sync::{Arc, Mutex};

/// Seed for the fault schedule (separate from every simulation seed).
pub const CHAOS_SEED: u64 = 0xE7_C4A0_5EED;

/// A supervised actor that panics on entry to each `ActorPanic` window.
/// The fired-window log lives *outside* the actor (shared with the
/// factory), so the supervisor's rebuild doesn't re-trigger the same
/// window and the panic count stays exactly one per window.
pub struct ChaosMonkey {
    /// The schedule whose `ActorPanic` windows trigger the panics.
    pub plan: FaultPlan,
    /// Shared log of windows already fired (survives restarts).
    pub fired: Arc<Mutex<Vec<Nanos>>>,
}

impl Actor for ChaosMonkey {
    fn handle(&mut self, msg: Message, _ctx: &Context) {
        let timestamp = match &msg {
            Message::Tick(snap) => snap.timestamp,
            Message::Frame(frame) => frame.timestamp,
            _ => return,
        };
        let Some(w) = self.plan.active(FaultKind::ActorPanic, timestamp) else {
            return;
        };
        let start = w.start;
        {
            let mut fired = self.fired.lock().expect("chaos log");
            if fired.contains(&start) {
                return;
            }
            fired.push(start);
            // Guard dropped before the panic: a poisoned log would wedge
            // the rebuilt actor.
        }
        panic!("chaos monkey: injected actor fault at {start:?}");
    }
}

/// Forwards every panic to the default hook except the monkey's own.
pub fn quiet_chaos_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("chaos monkey"));
        if !injected {
            default(info);
        }
    }));
}

/// The fault-plan configuration E7 and E10 share: every host fault kind
/// plus `ActorPanic`, with shorter windows in `--quick` mode so the full
/// kind roster still fires inside the 200 s excerpt.
pub fn chaos_fault_config(quick: bool) -> FaultPlanConfig {
    let mut cfg = FaultPlanConfig::default();
    cfg.kinds.push(FaultKind::ActorPanic);
    if quick {
        cfg.min_window = Nanos::from_secs(2);
        cfg.max_window = Nanos::from_secs(5);
    }
    cfg
}
