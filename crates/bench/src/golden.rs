//! Golden-trace harness: each experiment binary records its key metrics
//! into a [`Golden`] set and calls [`Golden::settle`] last thing. With
//! `--bless` the set is written to `tests/golden/<name>.golden`; with
//! `--check` the run is compared against that committed file and the
//! process exits nonzero on drift. Without either flag the harness is
//! silent, so casual `cargo run`s behave exactly as before.
//!
//! Only *deterministic* metrics belong in a golden set: everything the
//! seeded simulation derives (errors, counts, coefficients) qualifies;
//! wall-clock timings (e.g. E2's sweep milliseconds) never do.
//!
//! In between sit metrics whose *value* is seeded but whose exact tally
//! is coupled to real thread scheduling — E7's degraded-report count
//! (where a supervised restart lands relative to in-flight ticks) and
//! E9's drift-detection tick (which meter sample pairs with which
//! estimate depends on cross-thread arrival order). Those are recorded
//! with [`Golden::push_tol`] and an explicit loose tolerance, wide
//! enough to absorb a sample of jitter and still catch real regressions;
//! never silently widen the default for them.
//!
//! File format, one entry per line, `#` starts a comment:
//!
//! ```text
//! key value rel_tol
//! ```
//!
//! Values are written in Rust's shortest round-trip `f64` form, so a
//! `rel_tol` of `0` means bit-exact reproduction.

use std::fmt::Write as _;
use std::path::PathBuf;

/// Default relative tolerance for non-exact metrics: far tighter than any
/// scientific claim, loose enough to survive a compiler's float-contraction
/// choices changing across releases.
pub const DEFAULT_REL_TOL: f64 = 1e-6;

/// One recorded metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Metric key (snake_case, no whitespace).
    pub key: String,
    /// Observed value.
    pub value: f64,
    /// Relative tolerance for comparison (0 = exact).
    pub rel_tol: f64,
}

/// A named set of golden metrics being collected by an experiment run.
#[derive(Debug, Clone)]
pub struct Golden {
    name: String,
    entries: Vec<Entry>,
}

/// What `settle` decided to do, for callers that want to report it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Settled {
    /// No `--check`/`--bless` flag: nothing happened.
    Silent,
    /// `--bless`: the golden file was (re)written.
    Blessed,
    /// `--check`: the run matched the committed golden file.
    Matched,
}

impl Golden {
    /// Starts a set named after the experiment (`e3_figure3`); quick
    /// variants use a distinct name (`e7_chaos.quick`) so both schedules
    /// can hold goldens side by side.
    pub fn new(name: impl Into<String>) -> Golden {
        Golden {
            name: name.into(),
            entries: Vec::new(),
        }
    }

    /// Records a metric at the default tolerance.
    pub fn push(&mut self, key: impl Into<String>, value: f64) {
        self.push_tol(key, value, DEFAULT_REL_TOL);
    }

    /// Records a metric that must reproduce bit-exactly (counts, flags).
    pub fn push_exact(&mut self, key: impl Into<String>, value: f64) {
        self.push_tol(key, value, 0.0);
    }

    /// Records a metric at an explicit relative tolerance.
    pub fn push_tol(&mut self, key: impl Into<String>, value: f64, rel_tol: f64) {
        let key = key.into();
        assert!(
            !key.contains(char::is_whitespace),
            "golden key {key:?} must not contain whitespace"
        );
        assert!(value.is_finite(), "golden {key} is not finite: {value}");
        self.entries.push(Entry {
            key,
            value,
            rel_tol,
        });
    }

    /// The file this set belongs to: `tests/golden/<name>.golden` at the
    /// repository root.
    pub fn path(&self) -> PathBuf {
        repo_root()
            .join("tests")
            .join("golden")
            .join(format!("{}.golden", self.name))
    }

    /// Renders the set in the golden file format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# Golden metrics for {} — regenerate with:\n#   cargo run --release -p bench-suite --bin {} -- --bless\n# key value rel_tol",
            self.name,
            self.name.split('.').next().unwrap_or(&self.name),
        );
        for e in &self.entries {
            let _ = writeln!(out, "{} {} {}", e.key, e.value, e.rel_tol);
        }
        out
    }

    /// Applies the `--check`/`--bless` CLI contract and reports what it
    /// did. On `--check` drift, prints every mismatch and exits with
    /// status 3 (distinct from the experiments' own shape-verdict 1).
    pub fn settle(&self) -> Settled {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--bless") {
            let path = self.path();
            std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
                .expect("create golden dir");
            std::fs::write(&path, self.render()).expect("write golden file");
            println!(
                "golden: blessed {} ({} metrics)",
                path.display(),
                self.entries.len()
            );
            return Settled::Blessed;
        }
        if args.iter().any(|a| a == "--check") {
            let path = self.path();
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!(
                    "golden: cannot read {}: {e} (run with --bless first)",
                    path.display()
                );
                std::process::exit(3);
            });
            let expected = parse(&text).unwrap_or_else(|e| {
                eprintln!("golden: malformed {}: {e}", path.display());
                std::process::exit(3);
            });
            let drift = diff(&expected, &self.entries);
            if drift.is_empty() {
                println!(
                    "golden: {} metrics match {}",
                    self.entries.len(),
                    path.display()
                );
                return Settled::Matched;
            }
            eprintln!("golden: DRIFT against {}:", path.display());
            for line in &drift {
                eprintln!("  {line}");
            }
            std::process::exit(3);
        }
        Settled::Silent
    }
}

/// The repository root, resolved from this crate's manifest directory
/// (`crates/bench` → two levels up).
pub fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

/// Parses golden file text into entries.
///
/// # Errors
///
/// A human-readable description of the first malformed line.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(key), Some(value), Some(tol), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "line {}: want `key value rel_tol`: {line:?}",
                i + 1
            ));
        };
        let value: f64 = value
            .parse()
            .map_err(|e| format!("line {}: bad value: {e}", i + 1))?;
        let rel_tol: f64 = tol
            .parse()
            .map_err(|e| format!("line {}: bad rel_tol: {e}", i + 1))?;
        if !value.is_finite() || !rel_tol.is_finite() || rel_tol < 0.0 {
            return Err(format!("line {}: non-finite or negative numbers", i + 1));
        }
        entries.push(Entry {
            key: key.to_string(),
            value,
            rel_tol,
        });
    }
    Ok(entries)
}

/// Whether `got` matches `want` within `rel_tol` (of the larger
/// magnitude, so the comparison is symmetric; exact when `rel_tol` is 0).
pub fn matches(want: f64, got: f64, rel_tol: f64) -> bool {
    if want == got {
        return true;
    }
    (want - got).abs() <= rel_tol * want.abs().max(got.abs())
}

/// Compares a run against the expected entries: every expected key must
/// be present and in tolerance, and the run must not add or lose keys.
/// Returns one line per mismatch (empty = clean).
pub fn diff(expected: &[Entry], got: &[Entry]) -> Vec<String> {
    let mut out = Vec::new();
    for e in expected {
        match got.iter().find(|g| g.key == e.key) {
            None => out.push(format!("missing metric {}", e.key)),
            Some(g) if !matches(e.value, g.value, e.rel_tol) => out.push(format!(
                "{}: expected {} (rel_tol {}), got {}",
                e.key, e.value, e.rel_tol, g.value
            )),
            Some(_) => {}
        }
    }
    for g in got {
        if !expected.iter().any(|e| e.key == g.key) {
            out.push(format!(
                "new metric {} = {} not in golden file",
                g.key, g.value
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let mut g = Golden::new("unit");
        g.push("median_ape_pct", 15.123456789012345);
        g.push_exact("rows", 13.0);
        g.push_tol("idle_w", 31.48, 1e-3);
        let parsed = parse(&g.render()).expect("round trip");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed, g.entries, "shortest-round-trip floats are exact");
    }

    #[test]
    fn diff_flags_drift_missing_and_new_keys() {
        let expected = parse("a 1.0 0\nb 2.0 0.01\n").expect("parse");
        let ok = vec![
            Entry {
                key: "a".into(),
                value: 1.0,
                rel_tol: 0.0,
            },
            Entry {
                key: "b".into(),
                value: 2.015,
                rel_tol: 0.01,
            },
        ];
        assert!(
            diff(&expected, &ok).is_empty(),
            "{:?}",
            diff(&expected, &ok)
        );
        let bad = vec![
            Entry {
                key: "a".into(),
                value: 1.0000001,
                rel_tol: 0.0,
            },
            Entry {
                key: "c".into(),
                value: 3.0,
                rel_tol: 0.0,
            },
        ];
        let drift = diff(&expected, &bad);
        assert_eq!(drift.len(), 3, "{drift:?}");
        assert!(drift[0].contains("a:"), "{drift:?}");
        assert!(drift[1].contains("missing metric b"), "{drift:?}");
        assert!(drift[2].contains("new metric c"), "{drift:?}");
    }

    #[test]
    fn matches_is_exact_at_zero_tol_and_symmetric() {
        assert!(matches(0.0, 0.0, 0.0));
        assert!(!matches(1.0, 1.0 + f64::EPSILON, 0.0));
        assert!(matches(100.0, 100.00001, 1e-6));
        assert!(matches(100.00001, 100.0, 1e-6));
        assert!(!matches(100.0, 100.1, 1e-6));
    }

    #[test]
    fn comment_and_blank_lines_are_skipped() {
        let parsed = parse("# header\n\n  # indented comment\nx 4.5 0\n").expect("parse");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].key, "x");
    }

    #[test]
    fn malformed_lines_error_with_position() {
        assert!(parse("just_a_key\n").is_err());
        assert!(parse("k one 0\n").unwrap_err().contains("line 1"));
        assert!(parse("k 1 0 extra\n").is_err());
        assert!(parse("k 1 -0.5\n").is_err());
    }
}
