//! Shared fleet-simulation harness for the fleet experiments.
//!
//! E12 (transport resilience) and E14 (observability plane) replay the
//! same chaos arms: N simulated i3 hosts streaming batched tick frames
//! over fault-injected links into sharded estimators. The scenario
//! machinery lives here once — the seed, the pinned fault schedule, the
//! host workload mix and the arm runner — so both binaries exercise
//! bit-identical fleets and E13's cgrouped fleet arm can reuse the
//! tenant host builder. Scoring stays in each binary: what E12 grades
//! (MAE ratios, frame accounting) and what E14 grades (journey
//! reconstruction, SLO burn) differ, but the world under test must not.

use os_sim::kernel::Kernel;
use os_sim::task::{PeriodicTask, SteadyTask};
use perf_sim::events::PAPER_EVENTS;
use powerapi::fleet::FleetHop;
use powerapi::fleet::{
    Fleet, FleetConfig, FleetTickReport, FrameSource, LinkFaultConfig, LinkFaultKind,
    LinkFaultPlan, LinkWindow, ShardConfig, SimHostSource, SloConfig,
};
use powerapi::formula::PowerFormula;
use powerapi::host::SimHost;
use powerapi::telemetry::Telemetry;
use powermeter::powerspy::PowerSpyConfig;
use simcpu::presets;
use simcpu::units::Nanos;
use simcpu::workunit::WorkUnit;
use std::time::Instant;

/// Seed for the link-fault schedule (and nothing else — per-frame fault
/// decisions hash it with host/seq/attempt, so runs replay exactly).
pub const FLEET_SEED: u64 = 0xF1EE_7005;
/// Ticks skipped before scoring (frames in flight, tracks filling).
pub const WARMUP_TICKS: usize = 5;

/// The faulty arm's network: 5 % loss, light duplicate/corrupt/reorder
/// rates, two 10-tick partition windows and a couple of single-host dark
/// spells. The windows are pinned (not sampled) so they start after every
/// host has reported at least once — the scenario tests hold-over on a
/// *known* host, not cold-start blindness — and so quick and full runs
/// hit the same relative schedule.
pub fn fleet_faults(hosts: usize, ticks: u64) -> LinkFaultPlan {
    let span = (hosts / 8).max(2) as u32;
    let h = hosts as u32;
    let part = |start: u64, lo: u32| LinkWindow {
        kind: LinkFaultKind::Partition,
        start,
        end: start + 10,
        host_lo: lo,
        host_hi: (lo + span).min(h),
    };
    let dark = |start: u64, host: u32| LinkWindow {
        kind: LinkFaultKind::HostDark,
        start,
        end: start + 3,
        host_lo: host,
        host_hi: host + 1,
    };
    LinkFaultPlan::from_parts(
        FLEET_SEED,
        &LinkFaultConfig {
            drop_rate: 0.05,
            duplicate_rate: 0.01,
            corrupt_rate: 0.01,
            reorder_rate: 0.02,
            ..LinkFaultConfig::default()
        },
        vec![
            part(ticks / 4, 0),
            part(ticks / 2, span),
            dark(ticks / 3, 2 * span),
            dark(2 * ticks / 3, h - 1),
        ],
    )
}

/// One simulated host: an i3 running 1–3 steady services at loads spread
/// deterministically across the fleet, snapshotting a [`powerapi::frame::TickFrame`]
/// per fleet tick (four 250 ms scheduler quanta).
pub fn make_source(index: usize) -> Box<dyn FrameSource> {
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let procs = 1 + index % 3;
    let mut pids: Vec<_> = (0..procs)
        .map(|p| {
            let load = 0.15 + 0.70 * (((index * 3 + p * 5) % 11) as f64 / 10.0);
            kernel.spawn(
                format!("svc-{index}-{p}"),
                vec![SteadyTask::boxed(WorkUnit::cpu_intensive(load))],
            )
        })
        .collect();
    // One duty-cycled batch job per host (periods spread across the
    // fleet): host power genuinely moves tick to tick, so a stale
    // hold-over costs real watts — without it the steady fleet would
    // make frame loss literally free and the error ratio degenerate.
    let period = Nanos::from_secs(15 + (index % 5) as u64 * 5);
    pids.push(kernel.spawn(
        format!("batch-{index}"),
        vec![PeriodicTask::boxed(
            WorkUnit::cpu_intensive(0.5),
            period,
            0.5,
        )],
    ));
    finish_source(kernel, pids)
}

/// One simulated host with cgrouped tenants on top of the E12 workload
/// mix: the same steady services and batch job, but the first service
/// runs under `tenant-gold/svc-web` and even-indexed hosts add a
/// `tenant-bronze/svc-batch` worker — so `Fleet::explain` has real
/// tenant paths to attribute across hosts.
pub fn make_tenant_source(index: usize) -> Box<dyn FrameSource> {
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    kernel.cgroup_create("tenant-gold", 4096);
    kernel.cgroup_create("tenant-bronze", 1024);
    let mut pids = Vec::new();
    let gold_load = 0.15 + 0.70 * ((index * 3 % 11) as f64 / 10.0);
    pids.push(kernel.spawn_in_cgroup(
        format!("svc-web-{index}"),
        "tenant-gold/svc-web",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(gold_load))],
    ));
    if index.is_multiple_of(2) {
        pids.push(kernel.spawn_in_cgroup(
            format!("svc-batch-{index}"),
            "tenant-bronze/svc-batch",
            vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.25))],
        ));
    }
    // One duty-cycled stray outside every cgroup: tick-to-tick movement
    // (as in E12) plus a catch-all contribution the ledger must close.
    let period = Nanos::from_secs(15 + (index % 5) as u64 * 5);
    pids.push(kernel.spawn(
        format!("batch-{index}"),
        vec![PeriodicTask::boxed(
            WorkUnit::cpu_intensive(0.5),
            period,
            0.5,
        )],
    ));
    finish_source(kernel, pids)
}

/// Monitors `pids`, pre-warms the host to thermal steady state (τ = 30 s,
/// so 5τ — the fleet scenario models long-running services, and a host
/// mid-ramp would conflate hold-over error with thermal drift the
/// transport layer cannot see) and wraps it as a frame source.
fn finish_source(kernel: Kernel, pids: Vec<os_sim::process::Pid>) -> Box<dyn FrameSource> {
    let mut host = SimHost::new(kernel, PAPER_EVENTS.to_vec(), 4, PowerSpyConfig::default());
    for pid in pids {
        host.monitor(pid).expect("monitor");
    }
    for _ in 0..150 {
        host.step(Nanos::from_secs(1));
    }
    Box::new(SimHostSource::new(host, Nanos::from_millis(250), 4))
}

/// Nearest-rank percentile over an already-sorted sample.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Pulls `"key": <number>` out of flat JSON (the evidence files are
/// written by the experiment binaries with globally unique keys, so no
/// real parser needed).
pub fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One chaos arm's shape: everything that distinguishes clean from
/// faulty from saturated, with the SLO declaration the observability
/// plane tracks.
pub struct FleetSpec {
    /// Simulated hosts.
    pub hosts: usize,
    /// Fleet ticks to run.
    pub ticks: u64,
    /// Estimator shards.
    pub shards: usize,
    /// Shard service knobs (the saturated arm under-provisions these).
    pub shard: ShardConfig,
    /// The network fault schedule.
    pub fault: LinkFaultPlan,
    /// The declared lag SLO.
    pub slo: SloConfig,
}

impl FleetSpec {
    /// A clean arm: perfect links, default shards, default SLO.
    pub fn clean(hosts: usize, ticks: u64, shards: usize) -> FleetSpec {
        FleetSpec {
            hosts,
            ticks,
            shards,
            shard: ShardConfig::default(),
            fault: LinkFaultPlan::none(),
            slo: SloConfig::default(),
        }
    }
}

/// One arm, run to completion with the fleet kept alive for
/// post-run observability queries (journeys, SLO state, provenance).
pub struct FleetRun {
    /// The fleet after the run (journey log, SLO tracker, shards).
    pub fleet: Fleet,
    /// Per-tick aggregate reports (whole run, warmup included).
    pub reports: Vec<FleetTickReport>,
    /// The telemetry hub the fleet journaled into.
    pub telemetry: Telemetry,
    /// Wall-clock seconds spent inside `Fleet::run`.
    pub wall_s: f64,
}

/// Writes a fleet run's Chrome trace-event JSON — pipeline spans,
/// journal instants *and* per-frame journey tracks — to `path`
/// (creating parent directories as needed) and prints where it went.
///
/// # Panics
///
/// Panics when the directory or file cannot be written.
pub fn dump_fleet_trace(
    telemetry: &Telemetry,
    hops: &[FleetHop],
    tick_ns: u64,
    path: &std::path::Path,
) {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("create --dump-trace directory");
    }
    std::fs::write(
        path,
        powerapi::telemetry::chrome_trace_from_fleet(telemetry, hops, tick_ns),
    )
    .expect("write --dump-trace file");
    println!("        wrote Chrome trace to {}", path.display());
}

/// Runs one arm and asserts frame-accounting conservation. Scoring is
/// the caller's business — E12 and E14 grade different things over the
/// same world.
pub fn run_fleet(
    spec: FleetSpec,
    formula: &dyn PowerFormula,
    make: impl Fn(usize) -> Box<dyn FrameSource>,
) -> FleetRun {
    run_fleet_with(spec, formula, make, Telemetry::new())
}

/// [`run_fleet`] with the telemetry hub injected — E8 prices the fleet
/// tracing plane by replaying the same arm against an enabled and a
/// disabled hub (fault decisions hash only seed/host/seq/attempt, so
/// both arms see bit-identical worlds).
pub fn run_fleet_with(
    spec: FleetSpec,
    formula: &dyn PowerFormula,
    make: impl Fn(usize) -> Box<dyn FrameSource>,
    telemetry: Telemetry,
) -> FleetRun {
    let cfg = FleetConfig {
        shards: spec.shards,
        events: PAPER_EVENTS.to_vec(),
        shard: spec.shard,
        fault: spec.fault,
        slo: spec.slo,
        ..FleetConfig::default()
    };
    let sources: Vec<Box<dyn FrameSource>> = (0..spec.hosts).map(make).collect();
    let mut fleet = Fleet::new(cfg, formula, sources, telemetry.clone());
    let started = Instant::now();
    let reports = fleet.run(spec.ticks);
    let wall_s = started.elapsed().as_secs_f64();
    fleet.assert_conserved();
    FleetRun {
        fleet,
        reports,
        telemetry,
        wall_s,
    }
}
