//! Shared command-line flag parsing for the experiment binaries.
//!
//! Every `eN` binary understands the same flags, parsed the same way:
//!
//! * `--quick` — CI smoke mode: smaller sweeps, shorter runs, separate
//!   `.quick` golden snapshots;
//! * `--check` — regression-gate mode: compare against recorded
//!   baselines/goldens without rewriting them;
//! * `--bless` — rewrite golden snapshots from this run (consumed by
//!   [`Golden::settle`](crate::golden::Golden::settle), surfaced here so
//!   benches can branch on it);
//! * `--dump-trace <path>` — write the run's Chrome trace-event JSON.
//!
//! Hand-rolled per-binary parsing drifted (e7/e9/e10 each re-scanned
//! `std::env::args`); this module is the single implementation they all
//! share — and `e12_fleet` gets for free.

use std::path::PathBuf;

/// The parsed shared flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BenchArgs {
    /// `--quick`: CI smoke mode.
    pub quick: bool,
    /// `--check`: regression gate, no baseline rewrite.
    pub check: bool,
    /// `--bless`: rewrite golden snapshots.
    pub bless: bool,
    /// `--dump-trace <path>`: Chrome trace destination.
    pub dump_trace: Option<PathBuf>,
}

impl BenchArgs {
    /// Parses the process arguments.
    ///
    /// # Panics
    ///
    /// Panics when `--dump-trace` is the last argument (no path
    /// follows) — matching the historical behaviour of
    /// `dump_trace_flag`.
    pub fn parse() -> BenchArgs {
        BenchArgs::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (tests).
    ///
    /// # Panics
    ///
    /// Panics when `--dump-trace` has no following path argument.
    pub fn from_args(args: impl IntoIterator<Item = String>) -> BenchArgs {
        let mut parsed = BenchArgs::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => parsed.quick = true,
                "--check" => parsed.check = true,
                "--bless" => parsed.bless = true,
                "--dump-trace" => {
                    parsed.dump_trace = Some(PathBuf::from(
                        args.next().expect("--dump-trace requires a path argument"),
                    ));
                }
                // Unknown flags are ignored, as the hand-rolled
                // scanners did — benches stay forward-compatible with
                // harness-injected arguments.
                _ => {}
            }
        }
        parsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        BenchArgs::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn empty_is_default() {
        assert_eq!(parse(&[]), BenchArgs::default());
    }

    #[test]
    fn flags_parse_in_any_order() {
        let a = parse(&["--check", "--quick"]);
        assert!(a.quick && a.check && !a.bless);
        let b = parse(&["--quick", "--bless", "--check"]);
        assert!(b.quick && b.check && b.bless);
    }

    #[test]
    fn dump_trace_takes_the_next_argument() {
        let a = parse(&["--quick", "--dump-trace", "out/trace.json"]);
        assert_eq!(a.dump_trace, Some(PathBuf::from("out/trace.json")));
        assert!(a.quick);
    }

    #[test]
    fn unknown_flags_are_ignored() {
        let a = parse(&["--verbose", "--quick", "positional"]);
        assert!(a.quick);
        assert!(!a.check);
    }

    #[test]
    #[should_panic(expected = "--dump-trace requires a path")]
    fn trailing_dump_trace_panics() {
        parse(&["--dump-trace"]);
    }
}
