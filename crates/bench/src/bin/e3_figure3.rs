//! Experiment E3 — regenerates **Figure 3**: the SPECjbb2013 preliminary
//! experiment. A model is learned on the simulated i3-2120 (Figure 1
//! pipeline), then a 2500 s SPECjbb2013-like run is estimated live by the
//! PowerAPI actor pipeline while the simulated PowerSpy measures ground
//! truth. The two series are written as gnuplot-ready columns and the
//! median error is reported (paper: "the estimations … follow the same
//! trend as the real power consumption and exhibit a median error of
//! 15 %").
//!
//! Run: `cargo run --release -p bench-suite --bin e3_figure3 [--quick] [--check|--bless]`
//! (`--quick` learns on the quick grid and replays a 300 s excerpt.)
//! Data: `target/e3_figure3.dat` (columns: time_s meter_w estimate_w)

use bench_suite::{row, score_outcome, section, BenchArgs, Evaluation, Golden};
use powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi::model::learn::{learn_model, LearnConfig};
use simcpu::presets;
use simcpu::units::Nanos;

use std::io::Write;
use workloads::specjbb::{self, SpecJbbConfig};

fn main() {
    let args = BenchArgs::parse();
    section("E3: Figure 3 — SPECjbb2013, PowerSpy vs PowerAPI estimation");

    println!("  [1/3] learning the energy profile (Figure 1 pipeline)…");
    let learn_cfg = if args.quick {
        LearnConfig::quick()
    } else {
        LearnConfig::default()
    };
    let model = learn_model(presets::intel_i3_2120(), &learn_cfg).expect("learning");
    println!(
        "        idle = {:.2} W, {} frequencies",
        model.idle_w(),
        model.frequencies().len()
    );

    let jbb = if args.quick {
        SpecJbbConfig {
            duration: Nanos::from_secs(300),
            ..SpecJbbConfig::default()
        }
    } else {
        SpecJbbConfig::default()
    };
    println!(
        "  [2/3] running SPECjbb2013 for {} s under live estimation…",
        jbb.duration.as_secs_f64()
    );
    let eval = Evaluation::new(
        presets::intel_i3_2120(),
        "specjbb2013",
        specjbb::tasks(&jbb),
        jbb.duration,
    );
    let outcome = eval
        .run(PerFrequencyFormula::new(model))
        .expect("estimation run");

    println!("  [3/3] aligning traces and scoring…");
    let meter = outcome.meter_trace();
    let est = outcome.estimate_trace();
    let (actual, predicted) = meter.align(&est);
    let report = score_outcome(&outcome).expect("scoring");

    // Write the figure data.
    let path = std::path::Path::new("target").join("e3_figure3.dat");
    std::fs::create_dir_all("target").expect("target dir");
    let mut f = std::fs::File::create(&path).expect("figure data file");
    writeln!(f, "# Figure 3 reproduction: time_s meter_w estimate_w").expect("write");
    for (s, (a, p)) in meter.samples().iter().zip(actual.iter().zip(&predicted)) {
        writeln!(f, "{:.1} {:.3} {:.3}", s.at.as_secs_f64(), a, p).expect("write");
    }
    println!("        wrote {} rows to {}", actual.len(), path.display());

    section("trace excerpt (every 250 s)");
    println!(
        "  {:>8} {:>12} {:>12}",
        "time_s", "powerspy_w", "estimate_w"
    );
    for (i, (a, p)) in actual.iter().zip(&predicted).enumerate() {
        if i % 250 == 0 {
            println!("  {:>8} {:>12.2} {:>12.2}", i + 1, a, p);
        }
    }

    section("Figure 3 headline numbers");
    row("paper: median error", "15 %");
    row(
        "reproduction: median error",
        format!("{:.1} %", report.median_ape),
    );
    row(
        "reproduction: mean error (MAPE)",
        format!("{:.1} %", report.mape),
    );
    row(
        "reproduction: R^2 vs meter",
        format!("{:.3}", report.r_squared),
    );
    let mean_meter = actual.iter().sum::<f64>() / actual.len() as f64;
    let mean_est = predicted.iter().sum::<f64>() / predicted.len() as f64;
    row("mean measured power", format!("{mean_meter:.2} W"));
    row("mean estimated power", format!("{mean_est:.2} W"));

    // Shape verdict: trend-following with a median error in the paper's
    // ballpark (we accept 5–25 % — the paper itself calls 15 % a result
    // to improve on).
    let trend = mathkit::correlation::pearson(&actual, &predicted).expect("correlation");
    row("trend correlation (Pearson)", format!("{trend:.3}"));
    let ok = report.median_ape > 1.0 && report.median_ape < 25.0 && trend > 0.6;
    println!();
    println!(
        "E3 verdict: {} (median error {:.1}% in band 1–25%, trend r={:.2} > 0.6)",
        if ok { "SHAPE REPRODUCED" } else { "MISMATCH" },
        report.median_ape,
        trend
    );
    let mut golden = Golden::new(if args.quick {
        "e3_figure3.quick"
    } else {
        "e3_figure3"
    });
    golden.push_exact("aligned_samples", actual.len() as f64);
    golden.push("median_ape_pct", report.median_ape);
    golden.push("mape_pct", report.mape);
    golden.push("r_squared", report.r_squared);
    golden.push("trend_pearson", trend);
    golden.push("mean_meter_w", mean_meter);
    golden.push("mean_estimate_w", mean_est);
    golden.settle();

    if !ok {
        std::process::exit(1);
    }
}
