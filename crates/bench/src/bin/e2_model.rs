//! Experiment E2 — regenerates the paper's **§4 power-model equations**:
//! runs the full Figure 1 learning process (stress grid × every DVFS
//! frequency × HPC + PowerSpy → multivariate regression) on the simulated
//! i3-2120 and prints the learned idle constant and per-frequency
//! coefficients next to the published ones.
//!
//! The paper publishes `Power = 31.48 + Σ_f Power_f` and, at 3.30 GHz,
//! `P = 2.22e-9·i + 2.48e-8·r + 1.87e-7·m`. Absolute values depend on the
//! (simulated) silicon; the *shape* must hold: an idle constant near the
//! machine floor, positive coefficients, cache terms dominating per-event
//! cost, and coefficients growing with frequency (V² scaling).
//!
//! Run: `cargo run --release -p bench-suite --bin e2_model [--quick] [--check|--bless]`
//! (`--quick` learns on the quick grid at three frequencies and skips the
//! calibration wall-clock evidence file — sub-second sweeps are noise.)

use bench_suite::{row, section, BenchArgs, Golden};
use powerapi::model::learn::{fit_from_samples, measure_idle_power, LearnConfig};
use powerapi::model::sampling::collect;
use simcpu::presets;
use simcpu::units::MegaHertz;
use std::io::Write;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    section("E2: learning the i3-2120 energy profile (Figure 1 pipeline)");
    let machine = presets::intel_i3_2120();
    let cfg = if args.quick {
        LearnConfig::quick()
    } else {
        LearnConfig::default()
    };
    println!(
        "  grid: {} workloads x {} frequencies x {} samples of {}",
        cfg.sampling.grid.len(),
        machine.pstates.frequencies().len(),
        cfg.sampling.samples_per_point,
        cfg.sampling.sample_period,
    );

    section("calibration sweep wall-clock (serial vs parallel)");
    let threads = mathkit::par::available_threads();
    let mut sweep_cfg = cfg.sampling.clone();
    sweep_cfg.parallelism = 1;
    let start = Instant::now();
    let serial_set = collect(&machine, &sweep_cfg).expect("serial sweep");
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;
    sweep_cfg.parallelism = 0;
    let start = Instant::now();
    let parallel_set = collect(&machine, &sweep_cfg).expect("parallel sweep");
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        serial_set, parallel_set,
        "parallel sweep must be bit-identical to serial"
    );
    let speedup = serial_ms / parallel_ms;
    row("serial sweep (1 thread)", format!("{serial_ms:.0} ms"));
    row(
        format!("parallel sweep ({threads} threads)").as_str(),
        format!("{parallel_ms:.0} ms"),
    );
    row("speedup", format!("{speedup:.2}x (bit-identical output)"));
    if !args.quick {
        let bench_path = std::path::Path::new("BENCH_calibration.json");
        let mut f = std::fs::File::create(bench_path).expect("bench json file");
        writeln!(
            f,
            "{{\n  \"serial_ms\": {serial_ms:.1},\n  \"parallel_ms\": {parallel_ms:.1},\n  \"threads\": {threads},\n  \"speedup\": {speedup:.2}\n}}"
        )
        .expect("write bench json");
        println!("  wrote {}", bench_path.display());
    }

    let idle = measure_idle_power(&machine, &cfg).expect("idle measurement");
    let model = fit_from_samples(idle, &parallel_set).expect("learning pipeline");

    section("learned model (paper equation form)");
    print!("{model}");

    section("idle constant");
    row("paper (measured by PowerSpy)", "31.48 W");
    row(
        "reproduction (measured by simulated meter)",
        format!("{:.2} W", model.idle_w()),
    );

    section("coefficients at 3.30 GHz  [W per (event/s) = J per event]");
    let paper = [2.22e-9, 2.48e-8, 1.87e-7];
    let got = model
        .coefficients(MegaHertz(3300))
        .expect("3.3 GHz was sampled");
    println!(
        "  {:<20} {:>14} {:>14} {:>10}",
        "event", "paper", "reproduction", "ratio"
    );
    for ((name, p), g) in model.event_names().iter().zip(paper).zip(got) {
        println!("  {:<20} {:>14.3e} {:>14.3e} {:>9.2}x", name, p, g, g / p);
    }

    section("shape checks");
    let (i, r, m) = (got[0], got[1], got[2]);
    let checks = [
        (
            "idle within 10% of the machine floor",
            (model.idle_w() - 31.6).abs() < 3.2,
        ),
        ("instruction coefficient positive", i > 0.0),
        ("cache-reference > instruction energy", r > i),
        ("cache-miss > cache-reference energy", m > r),
        (
            "instruction energy within a decade of 2.22 nJ",
            i > 2.22e-10 && i < 2.22e-8,
        ),
        (
            "miss energy within a decade of 187 nJ",
            m > 1.87e-8 && m < 1.87e-6,
        ),
    ];
    let mut ok = true;
    for (label, pass) in checks {
        row(label, if pass { "PASS" } else { "FAIL" });
        ok &= pass;
    }

    // Coefficients per frequency: voltage-squared scaling makes per-event
    // energy rise with frequency — the reason for per-frequency models.
    let freqs = model.frequencies();
    let lo = model.coefficients(freqs[0]).expect("min freq")[0];
    let hi = model
        .coefficients(*freqs.last().expect("nonempty"))
        .expect("max freq")[0];
    row(
        "instruction energy grows with frequency",
        if hi > lo { "PASS" } else { "FAIL" },
    );
    ok &= hi > lo;
    println!(
        "  (instructions: {:.3e} J at {} -> {:.3e} J at {})",
        lo,
        freqs[0],
        hi,
        freqs.last().expect("nonempty")
    );

    println!();
    println!(
        "E2 verdict: {}",
        if ok { "SHAPE REPRODUCED" } else { "MISMATCH" }
    );

    // Golden set: the learned model only (the sweep's wall-clock
    // milliseconds are machine-dependent and never belong here).
    let mut golden = Golden::new(if args.quick {
        "e2_model.quick"
    } else {
        "e2_model"
    });
    golden.push("idle_w", model.idle_w());
    golden.push("coef_instructions_j", i);
    golden.push("coef_cache_references_j", r);
    golden.push("coef_cache_misses_j", m);
    golden.push("coef_instructions_min_freq_j", lo);
    golden.push("coef_instructions_max_freq_j", hi);
    golden.push_exact("frequencies", freqs.len() as f64);
    golden.settle();

    if !ok {
        std::process::exit(1);
    }
}
