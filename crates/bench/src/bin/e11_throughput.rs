//! Experiment E11 — hot-path throughput. Sweeps the monitored-process
//! count 10 → 10k and measures how fast the Sensor→Formula→Aggregator→
//! Reporter pipeline turns monitoring ticks: wall-clock ticks/s,
//! processes×ticks/s, and simulated-seconds per wall second.
//!
//! Protocol: N identical steady processes, paper model, memory reporter,
//! both aggregation dimensions, telemetry on (the production shape).
//! The host is stepped one quantum per clock period so the measurement
//! is dominated by the middleware, not the OS simulation. Each point is
//! the best of [`RUNS`] runs after a warm-up (min-of-N strips scheduler
//! noise, as in E8).
//!
//! The first full run records the **baseline** section of
//! `BENCH_throughput.json`; later runs preserve it so the batched
//! tick-frame refactor can be judged against the pre-refactor pipeline
//! (target: ≥10× ticks/s at 1k processes). `--check` re-measures the 1k
//! point only and fails (exit 1) if it drops >20 % below the recorded
//! guard value — the CI regression gate.
//!
//! Run:   `cargo run --release -p bench-suite --bin e11_throughput`
//! Quick: `... -- --quick`   (CI smoke: smaller sweep, fewer ticks)
//! Gate:  `... -- --check`   (1k-process regression guard, no rewrite)
//! Data:  `BENCH_throughput.json` (repo root, committed as evidence)

use bench_suite::{row, section, BenchArgs};
use os_sim::kernel::Kernel;
use os_sim::task::SteadyTask;
use powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi::model::power_model::PerFrequencyPowerModel;
use powerapi::prelude::Dimension;
use powerapi::runtime::PowerApi;
use simcpu::presets;
use simcpu::units::Nanos;
use simcpu::workunit::WorkUnit;
use std::fmt::Write as _;
use std::time::Instant;

/// Best-of-N wall measurements per sweep point.
const RUNS: usize = 2;
/// Warm-up ticks before the timed window (fills pools and caches).
const WARMUP_TICKS: u64 = 3;
/// Regression-guard tolerance: fail when >20 % below the recorded value.
const GUARD_DROP: f64 = 0.20;

/// One measured sweep point.
#[derive(Clone, Copy)]
struct Point {
    procs: usize,
    ticks: u64,
    ticks_per_s: f64,
    proc_ticks_per_s: f64,
    sim_s_per_s: f64,
}

/// Timed ticks for a process count — scaled so the slow (pre-refactor)
/// pipeline still sweeps 10k processes in seconds, clamped to keep the
/// statistics honest at the small end.
fn ticks_for(procs: usize, quick: bool) -> u64 {
    let full = (200_000 / procs.max(1)) as u64;
    let t = full.clamp(30, 2_000);
    if quick {
        (t / 4).max(15)
    } else {
        t
    }
}

/// Runs the pipeline once and returns wall seconds for the timed window.
fn run_once(model: &PerFrequencyPowerModel, procs: usize, ticks: u64) -> f64 {
    let period = Nanos::from_secs(1);
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let pids: Vec<_> = (0..procs)
        .map(|i| {
            kernel.spawn(
                format!("p{i}"),
                vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.6))],
            )
        })
        .collect();
    let mut papi = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(model.clone()))
        .dimension(Dimension::both())
        .report_to_memory()
        .quantum(period)
        .clock_period(period)
        .build()
        .expect("build");
    for pid in pids {
        papi.monitor(pid).expect("monitor");
    }
    papi.run_for(Nanos(period.as_u64() * WARMUP_TICKS))
        .expect("warmup");
    let started = Instant::now();
    papi.run_for(Nanos(period.as_u64() * ticks)).expect("run");
    let wall = started.elapsed().as_secs_f64();
    papi.finish().expect("finish");
    wall
}

/// Best-of-RUNS measurement of one sweep point.
fn measure(model: &PerFrequencyPowerModel, procs: usize, ticks: u64, runs: usize) -> Point {
    let mut best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        best = best.min(run_once(model, procs, ticks));
    }
    let ticks_per_s = ticks as f64 / best;
    Point {
        procs,
        ticks,
        ticks_per_s,
        proc_ticks_per_s: ticks_per_s * procs as f64,
        sim_s_per_s: ticks_per_s, // 1 s of simulated time per tick
    }
}

/// Pulls `"key": <number>` out of flat JSON (the evidence file is written
/// by this binary with globally unique keys, so no real parser needed).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    let check = args.check;

    let model = PerFrequencyPowerModel::paper_i3_example();
    let json_path = std::path::Path::new("BENCH_throughput.json");
    let existing = std::fs::read_to_string(json_path).ok();

    if check {
        section("E11: 1k-process throughput regression guard");
        let recorded = existing
            .as_deref()
            .and_then(|t| json_number(t, "guard_ticks_per_s_1k"))
            .unwrap_or_else(|| {
                eprintln!(
                    "no guard_ticks_per_s_1k in BENCH_throughput.json — run e11_throughput first"
                );
                std::process::exit(2);
            });
        let ticks = ticks_for(1_000, quick);
        let p = measure(&model, 1_000, ticks, RUNS);
        let floor = recorded * (1.0 - GUARD_DROP);
        row("recorded ticks/s", format!("{recorded:.1}"));
        row("measured ticks/s", format!("{:.1}", p.ticks_per_s));
        row("floor (−20 %)", format!("{floor:.1}"));
        let ok = p.ticks_per_s >= floor;
        println!();
        println!(
            "E11 guard: {} ({:.1} ticks/s vs floor {floor:.1})",
            if ok { "PASS" } else { "FAIL" },
            p.ticks_per_s
        );
        if !ok {
            std::process::exit(1);
        }
        return;
    }

    section(if quick {
        "E11: hot-path throughput sweep (quick)"
    } else {
        "E11: hot-path throughput sweep"
    });
    let sweep: &[usize] = if quick {
        &[10, 100, 1_000]
    } else {
        &[10, 100, 1_000, 10_000]
    };

    let mut points = Vec::new();
    println!(
        "  {:>8} {:>8} {:>12} {:>16} {:>12}",
        "procs", "ticks", "ticks/s", "proc·ticks/s", "sim_s/s"
    );
    for &n in sweep {
        let p = measure(&model, n, ticks_for(n, quick), RUNS);
        println!(
            "  {:>8} {:>8} {:>12.1} {:>16.0} {:>12.1}",
            p.procs, p.ticks, p.ticks_per_s, p.proc_ticks_per_s, p.sim_s_per_s
        );
        points.push(p);
    }

    let at_1k = points
        .iter()
        .find(|p| p.procs == 1_000)
        .expect("sweep includes 1k");

    // The baseline section is frozen the first time this binary runs (on
    // the pre-refactor pipeline) and preserved verbatim afterwards, so
    // every later run reports its speedup against the same yardstick.
    let baseline: Vec<(usize, f64)> = sweep
        .iter()
        .map(|&n| {
            let key = format!("baseline_n{n}_ticks_per_s");
            let frozen = existing.as_deref().and_then(|t| json_number(t, &key));
            let fresh = points
                .iter()
                .find(|p| p.procs == n)
                .map(|p| p.ticks_per_s)
                .unwrap_or(0.0);
            (n, frozen.unwrap_or(fresh))
        })
        .collect();
    let base_1k = baseline
        .iter()
        .find(|(n, _)| *n == 1_000)
        .map(|(_, v)| *v)
        .unwrap_or(at_1k.ticks_per_s);
    let speedup_1k = at_1k.ticks_per_s / base_1k;

    section("vs pre-refactor baseline");
    for (n, base) in &baseline {
        if let Some(p) = points.iter().find(|p| p.procs == *n) {
            row(
                &format!("{n} procs"),
                format!(
                    "{:.1} ticks/s vs {base:.1} → {:.2}×",
                    p.ticks_per_s,
                    p.ticks_per_s / base
                ),
            );
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"experiment\": \"e11_throughput\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(out, "  \"runs_per_point\": {RUNS},");
    let _ = writeln!(out, "  \"baseline\": {{");
    for (i, (n, v)) in baseline.iter().enumerate() {
        let comma = if i + 1 == baseline.len() { "" } else { "," };
        let _ = writeln!(out, "    \"baseline_n{n}_ticks_per_s\": {v:.2}{comma}");
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"current\": {{");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    \"n{}\": {{\"ticks\": {}, \"ticks_per_s\": {:.2}, \"proc_ticks_per_s\": {:.0}, \"sim_s_per_s\": {:.2}}}{comma}",
            p.procs, p.ticks, p.ticks_per_s, p.proc_ticks_per_s, p.sim_s_per_s
        );
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"guard_ticks_per_s_1k\": {:.2},", at_1k.ticks_per_s);
    let _ = writeln!(out, "  \"speedup_at_1k\": {speedup_1k:.3},");
    let _ = writeln!(out, "  \"target_speedup_at_1k\": 10.0");
    let _ = writeln!(out, "}}");
    std::fs::write(json_path, out).expect("evidence file");
    println!();
    println!("        wrote {}", json_path.display());
    println!();
    println!(
        "E11: {:.1} ticks/s at 1k procs ({speedup_1k:.2}× baseline)",
        at_1k.ticks_per_s
    );
}
