//! Experiment E1 — regenerates **Table 1** of the paper: the Intel Core
//! i3-2120 specification sheet, straight from the simulator preset the
//! whole evaluation runs on. Every row is checked against the published
//! value; the comparison machines' sheets are printed for context.
//!
//! Run: `cargo run --release -p bench-suite --bin e1_table1 [--quick] [--check|--bless]`
//! (`--quick` only switches the golden snapshot name — the spec sheet has
//! no schedule to shrink.)

use bench_suite::{section, BenchArgs, Golden};
use simcpu::presets::{self, Spec};
use simcpu::units::MegaHertz;

fn main() {
    let args = BenchArgs::parse();
    section("E1: Table 1 — Intel Core i3 2120 specifications");
    let spec = Spec::of(&presets::intel_i3_2120());
    print!("{spec}");

    // Assert the reproduction matches the paper's published rows.
    let paper = [
        ("Vendor", "Intel"),
        ("Processor", "i3"),
        ("Model", "2120"),
        ("Design", "4 threads"),
        ("Frequency", "3.30 GHz"),
        ("TDP", "65 W"),
        ("SpeedStep (DVFS)", "yes"),
        ("HyperThreading (SMT)", "yes"),
        ("TurboBoost (Overclocking)", "no"),
        ("C-states (Idle states)", "yes"),
        ("L1 cache", "64 KB / core"),
        ("L2 cache", "256 KB / core"),
        ("L3 cache", "3 MB"),
    ];
    let rows = spec.rows();
    let mut ok = true;
    for (label, want) in paper {
        let got = rows
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| v.as_str())
            .unwrap_or("<missing>");
        if got != want {
            println!("MISMATCH {label}: paper={want} repro={got}");
            ok = false;
        }
    }
    assert_eq!(spec.frequency, MegaHertz(3300));
    println!();
    println!(
        "Table 1 reproduction: {} ({} rows checked)",
        if ok { "MATCH" } else { "MISMATCH" },
        paper.len()
    );

    section("comparison platforms (context, not in Table 1)");
    for cfg in [presets::core2duo_e6600(), presets::xeon_smt_turbo()] {
        println!("--- {} {} {} ---", cfg.vendor, cfg.family, cfg.model);
        print!("{}", Spec::of(&cfg));
    }

    let mut golden = Golden::new(if args.quick {
        "e1_table1.quick"
    } else {
        "e1_table1"
    });
    golden.push_exact("rows_checked", paper.len() as f64);
    golden.push_exact("rows_matched", f64::from(ok));
    golden.push_exact("frequency_mhz", f64::from(spec.frequency.0));
    golden.settle();

    if !ok {
        std::process::exit(1);
    }
}
