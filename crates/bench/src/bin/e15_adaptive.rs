//! Experiment E15 — adaptive sampling: the overhead/accuracy Pareto
//! frontier, measured. Three stories, one learned model per testbed:
//!
//! * **static sweep** — the stock SPECjbb excerpt estimated at fixed
//!   sampling periods {1, 2, 4, 8} s × PMU slot caps {4, 2}. Every arm
//!   prices its own monitoring through the self-cost ledger (counter
//!   reads scaled by multiplexing pressure, per-stage handler time,
//!   telemetry harvest) and scores its median APE against the simulated
//!   PowerSpy — one (overhead, error) point per arm, the frontier the
//!   controller has to beat;
//! * **adaptive arm** — the same excerpt with the closed-loop controller
//!   on: in-band residuals walk the period ladder 1→2→4→8 and shed a
//!   counter slot, any breach snaps back to full rate. The claim: **≥5×
//!   fewer sensor counter reads at <1 pp added median APE** vs the
//!   full-rate baseline, and no static arm Pareto-dominates it;
//! * **drift arm** — E9's thermal-leak scenario, always-on vs adaptive.
//!   The controller is backed off when the leak develops, so the test is
//!   whether snap-back keeps detection sharp: the first drift alarm must
//!   land within one base tick of the always-on run's.
//!
//! Every rate transition journals as a `rate-change` event; the bench
//! re-reads the JSONL flight-recorder dump and reconstructs the whole
//! factor ladder from it alone (chain-consistent, ends at the live
//! controller's factor) — the rate history needs no side channel.
//!
//! Run:   `cargo run --release -p bench-suite --bin e15_adaptive`
//! Quick: `... -- --quick`   (shorter excerpt, quick learning campaign)
//! Gate:  `... -- --check`   (golden check + samples-saved floor and
//!         APE-delta ceiling against committed BENCH_adaptive.json)
//! Data:  `BENCH_adaptive.json` (repo root, committed as evidence)

use bench_suite::fleetsim::json_number;
use bench_suite::{dump_trace, row, score_outcome, section, BenchArgs, Golden};
use powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi::model::learn::{learn_model, LearnConfig};
use powerapi::model::power_model::PerFrequencyPowerModel;
use powerapi::prelude::{HealthConfig, SamplingConfig, SelfCostSummary};
use powerapi::runtime::PowerApi;
use powerapi::telemetry::{dump_jsonl, parse_jsonl, EventKind};
use simcpu::machine::MachineConfig;
use simcpu::power::PowerModel;
use simcpu::presets;
use simcpu::units::Nanos;
use simcpu::workunit::WorkUnit;
use std::io::Write;
use workloads::specjbb::{self, SpecJbbConfig};

/// Regression-guard bounds for `--check`: the measured samples-saved
/// ratio may drop at most 20 % below the committed value (and never
/// below the 5× claim), the APE delta may exceed the committed value by
/// at most 0.25 pp (and never the 1 pp claim).
const GUARD_DROP: f64 = 0.20;
const GUARD_APE_SLACK_PP: f64 = 0.25;
const MIN_SAMPLES_SAVED: f64 = 5.0;
const MAX_APE_DELTA_PP: f64 = 1.0;

/// Median-APE differences inside the alignment noise do not order the
/// frontier: which meter sample pairs with which estimate depends on the
/// sampling period, and the static sweep itself shows the scale — the
/// full-run APE-vs-period curve is *non-monotone* (1 s → 13.8 %,
/// 4 s → 12.6 %, 8 s → 13.2 %), wiggling ~0.6 pp between adjacent arms
/// whose true accuracy cannot differ that way. Arms within half that
/// wiggle are tied on the accuracy axis; a static arm only *dominates*
/// the adaptive one if it is at least as cheap AND materially more
/// accurate.
const APE_NOISE_PP: f64 = 0.5;

/// One measured (overhead, accuracy) point.
struct Arm {
    label: String,
    period_s: u64,
    slots: usize,
    median_ape: f64,
    selfcost: SelfCostSummary,
}

/// E9's cold testbed: the i3 with thermal leakage zeroed, which is what
/// a short cold calibration sweep effectively sees.
fn cold_i3() -> MachineConfig {
    let mut machine = presets::intel_i3_2120();
    machine.power = PowerModel::builder()
        .platform_idle_w(26.0)
        .package_idle_w(5.5)
        .core_baseline_w_per_ghz_v2(2.7)
        .smt_second_thread_factor(0.10)
        .vref(1.05)
        .thermal_tau_s(30.0)
        .thermal_resistance_c_per_w(1.2)
        .thermal_leak_w_per_c(0.0)
        .build();
    machine
}

/// E9's detector tuning (slack above stationary fit bias, far below the
/// thermal-leak drift).
fn health_config() -> HealthConfig {
    HealthConfig {
        cusum_slack_w: 5.0,
        cusum_threshold_w: 15.0,
        ph_delta_w: 1.5,
        ph_lambda_w: 45.0,
        ..HealthConfig::default()
    }
}

/// A full-rate pin: the ledger prices the run but the controller never
/// leaves factor 1, so static arms keep their exact static schedule.
fn ledger_only() -> SamplingConfig {
    SamplingConfig {
        max_factor: 1,
        ..SamplingConfig::default()
    }
}

/// Runs the stock SPECjbb excerpt on the i3 at a static period/slot
/// budget (controller pinned) or under the live controller.
fn run_stock(
    model: PerFrequencyPowerModel,
    duration: Nanos,
    period_s: u64,
    slots: usize,
    sampling: SamplingConfig,
) -> (
    Arm,
    powerapi::runtime::RunOutcome,
    powerapi::telemetry::Telemetry,
) {
    let jbb = SpecJbbConfig {
        duration,
        ..SpecJbbConfig::default()
    };
    let mut kernel = os_sim::kernel::Kernel::new(presets::intel_i3_2120());
    let pid = kernel.spawn("specjbb", specjbb::tasks(&jbb));
    let adaptive = sampling.max_factor > 1;
    let mut papi = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(model))
        .events(perf_sim::events::PAPER_EVENTS.to_vec())
        .slots(slots)
        .report_to_memory()
        .quantum(Nanos::from_millis(1))
        .clock_period(Nanos::from_secs(period_s))
        .adaptive_sampling(sampling)
        .build()
        .expect("pipeline");
    papi.monitor(pid).expect("monitor");
    papi.run_for(duration).expect("run");
    let telemetry = papi.telemetry().clone();
    let outcome = papi.finish().expect("finish");
    let report = score_outcome(&outcome).expect("scoring");
    let label = if adaptive {
        "adaptive".to_string()
    } else {
        format!("{period_s}s/{slots}sl")
    };
    (
        Arm {
            label,
            period_s,
            slots,
            median_ape: report.median_ape,
            selfcost: outcome.selfcost,
        },
        outcome,
        telemetry,
    )
}

/// E9's drift scenario (full co-run load on a cold-calibrated model)
/// with the residual monitor on; `sampling` optionally adds the
/// controller. Returns (first_alarm_s, rate transitions journaled).
fn run_drift(
    machine: MachineConfig,
    model: PerFrequencyPowerModel,
    duration: Nanos,
    sampling: Option<SamplingConfig>,
) -> (f64, u64, SelfCostSummary) {
    let mut kernel = os_sim::kernel::Kernel::new(machine);
    let tasks: Vec<Box<dyn os_sim::task::TaskBehavior>> = (0..4)
        .map(|_| os_sim::task::SteadyTask::boxed(WorkUnit::cpu_intensive(1.0)))
        .collect();
    let pid = kernel.spawn("steady-load", tasks);
    let mut builder = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(model))
        .model_health(health_config())
        .events(perf_sim::events::PAPER_EVENTS.to_vec())
        .slots(4)
        .report_to_memory()
        .quantum(Nanos::from_millis(1))
        .clock_period(Nanos::from_secs(1));
    if let Some(cfg) = sampling {
        builder = builder.adaptive_sampling(cfg);
    }
    let mut papi = builder.build().expect("pipeline");
    papi.monitor(pid).expect("monitor");
    papi.run_for(duration).expect("run");
    let transitions = papi.sampling_controller().map_or(0, |c| c.transitions());
    let outcome = papi.finish().expect("finish");
    (
        outcome.model_health.first_alarm_s.unwrap_or(f64::INFINITY),
        transitions,
        outcome.selfcost,
    )
}

/// Rebuilds the factor ladder from the JSONL journal dump alone: every
/// `rate-change` detail carries `period <old>s -> <new>s`, so the chain
/// of factors is fully reconstructable without touching the controller.
fn factors_from_dump(jsonl: &str, base_period_s: f64) -> Vec<(u32, u32)> {
    let events = parse_jsonl(jsonl).expect("journal dump parses");
    let mut ladder = Vec::new();
    for e in events {
        if e.kind != EventKind::RateChange {
            continue;
        }
        // Details read "… period 1.000s -> 2.000s …" in both directions.
        let detail = &e.detail;
        let rest = detail
            .split("period ")
            .nth(1)
            .unwrap_or_else(|| panic!("rate-change detail names the period: {detail:?}"));
        let mut sides = rest.split("s -> ");
        let old: f64 = sides
            .next()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or_else(|| panic!("old period parses: {detail:?}"));
        let new: f64 = sides
            .next()
            .and_then(|s| s.split('s').next())
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or_else(|| panic!("new period parses: {detail:?}"));
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        ladder.push((
            (old / base_period_s).round() as u32,
            (new / base_period_s).round() as u32,
        ));
    }
    ladder
}

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    section(if quick {
        "E15: adaptive sampling — overhead/accuracy Pareto frontier (quick)"
    } else {
        "E15: adaptive sampling — overhead/accuracy Pareto frontier"
    });

    let learn_cfg = if quick {
        LearnConfig::quick()
    } else {
        LearnConfig::default()
    };
    let stock_duration = if quick {
        Nanos::from_secs(360)
    } else {
        Nanos::from_secs(600)
    };
    let drift_duration = if quick {
        Nanos::from_secs(80)
    } else {
        Nanos::from_secs(150)
    };

    println!("  [1/5] learning the stock-i3 energy profile…");
    let stock_model = learn_model(presets::intel_i3_2120(), &learn_cfg).expect("learning");

    println!(
        "  [2/5] static sweep: {} s SPECjbb at periods 1/2/4/8 s × slots 4/2…",
        stock_duration.as_secs_f64()
    );
    let mut statics = Vec::new();
    for &slots in &[4usize, 2] {
        for &period_s in &[1u64, 2, 4, 8] {
            let (arm, _, _) = run_stock(
                stock_model.clone(),
                stock_duration,
                period_s,
                slots,
                ledger_only(),
            );
            println!(
                "        {:>7}: median APE {:>6.2} %, {:>5} reads, {:>9} ns priced",
                arm.label,
                arm.median_ape,
                arm.selfcost.sensor_reads,
                arm.selfcost.total_ns()
            );
            statics.push(arm);
        }
    }
    let baseline = &statics[0]; // 1 s × 4 slots = the full-rate baseline

    println!("  [3/5] adaptive arm: controller on, same excerpt…");
    let adaptive_cfg = SamplingConfig {
        shed_slots: Some(2),
        ..SamplingConfig::default()
    };
    let (adaptive, _outcome, telemetry) =
        run_stock(stock_model.clone(), stock_duration, 1, 4, adaptive_cfg);
    if let Some(path) = &args.dump_trace {
        dump_trace(&telemetry, path);
    }
    let journal_events = telemetry.journal().events();
    let transitions = journal_events
        .iter()
        .filter(|e| e.kind == EventKind::RateChange)
        .count() as u64;

    // Flight-recorder reconstruction: the whole ladder from the dump.
    let jsonl = dump_jsonl(&journal_events);
    let ladder = factors_from_dump(&jsonl, 1.0);
    let chain_ok =
        !ladder.is_empty() && ladder[0].0 == 1 && ladder.windows(2).all(|w| w[0].1 == w[1].0);
    assert_eq!(
        ladder.len() as u64,
        transitions,
        "every rate transition must appear in the dump"
    );

    let samples_saved =
        baseline.selfcost.sensor_reads as f64 / adaptive.selfcost.sensor_reads.max(1) as f64;
    let ape_delta = adaptive.median_ape - baseline.median_ape;
    // Pareto: no static arm may beat the adaptive arm on BOTH axes
    // (cheaper or equal reads AND materially better accuracy).
    let dominated_by = statics.iter().find(|s| {
        s.selfcost.sensor_reads <= adaptive.selfcost.sensor_reads
            && s.median_ape < adaptive.median_ape - APE_NOISE_PP
    });
    // The positive half of the claim: static arms the adaptive one beats
    // outright (strictly fewer reads, accuracy no worse beyond noise).
    let arms_dominated = statics
        .iter()
        .filter(|s| {
            adaptive.selfcost.sensor_reads < s.selfcost.sensor_reads
                && adaptive.median_ape <= s.median_ape + APE_NOISE_PP
        })
        .count();

    section("Pareto frontier (sensor reads vs median APE)");
    println!(
        "  {:>9} {:>8} {:>7} {:>10} {:>12} {:>10}",
        "arm", "period_s", "slots", "reads", "priced_ns", "med_ape_%"
    );
    for arm in statics.iter().chain(std::iter::once(&adaptive)) {
        println!(
            "  {:>9} {:>8} {:>7} {:>10} {:>12} {:>10.2}",
            arm.label,
            arm.period_s,
            arm.slots,
            arm.selfcost.sensor_reads,
            arm.selfcost.total_ns(),
            arm.median_ape
        );
    }
    row("samples saved vs full rate", format!("{samples_saved:.1}×"));
    row("added median APE", format!("{ape_delta:+.2} pp"));
    row(
        "rate transitions (journal == controller)",
        format!("{transitions} (ladder chain ok: {chain_ok})"),
    );
    row(
        "Pareto-dominated by a static arm",
        dominated_by.map_or("no".to_string(), |s| s.label.clone()),
    );
    row(
        "static arms the adaptive arm dominates",
        format!(
            "{arms_dominated}/{} (APE ties within {APE_NOISE_PP} pp)",
            statics.len()
        ),
    );

    println!(
        "  [4/5] drift arms: {} s thermal leak, always-on vs adaptive…",
        drift_duration.as_secs_f64()
    );
    let cold_model = learn_model(cold_i3(), &learn_cfg).expect("cold learning");
    let (alwayson_alarm_s, _, _) = run_drift(
        presets::intel_i3_2120(),
        cold_model.clone(),
        drift_duration,
        None,
    );
    let (adaptive_alarm_s, drift_transitions, drift_cost) = run_drift(
        presets::intel_i3_2120(),
        cold_model,
        drift_duration,
        Some(SamplingConfig::default()),
    );
    let alarm_delta_s = (adaptive_alarm_s - alwayson_alarm_s).abs();

    section("drift detection under adaptive sampling");
    row("always-on first alarm", format!("{alwayson_alarm_s:.0} s"));
    row("adaptive first alarm", format!("{adaptive_alarm_s:.0} s"));
    row(
        "detection delay added",
        format!("{alarm_delta_s:.1} s (≤ 1 tick)"),
    );
    row("drift-arm rate transitions", drift_transitions);
    row(
        "drift-arm sensor reads",
        format!(
            "{} (always-on would pay every tick)",
            drift_cost.sensor_reads
        ),
    );

    println!("  [5/5] scoring and writing evidence…");
    let ok = samples_saved >= MIN_SAMPLES_SAVED
        && ape_delta < MAX_APE_DELTA_PP
        && dominated_by.is_none()
        && chain_ok
        && transitions >= 3
        && alwayson_alarm_s.is_finite()
        && adaptive_alarm_s.is_finite()
        && alarm_delta_s <= 1.0
        && drift_transitions >= 2; // backed off, then snapped back

    let json_path = std::path::Path::new("BENCH_adaptive.json");
    if args.check {
        // Regression gate against the committed evidence (same pattern
        // as E11/E12/E14: run the arms, compare, never rewrite).
        let text = std::fs::read_to_string(json_path).unwrap_or_else(|e| {
            eprintln!("cannot read BENCH_adaptive.json: {e} — run e15_adaptive first");
            std::process::exit(2);
        });
        let recorded_saved = json_number(&text, "samples_saved_ratio").unwrap_or_else(|| {
            eprintln!("no samples_saved_ratio in BENCH_adaptive.json");
            std::process::exit(2);
        });
        let recorded_delta = json_number(&text, "ape_delta_pp").unwrap_or_else(|| {
            eprintln!("no ape_delta_pp in BENCH_adaptive.json");
            std::process::exit(2);
        });
        let floor = (recorded_saved * (1.0 - GUARD_DROP)).max(MIN_SAMPLES_SAVED);
        let ceiling = (recorded_delta + GUARD_APE_SLACK_PP).min(MAX_APE_DELTA_PP);
        section("E15 adaptive-sampling regression guard");
        row("recorded samples saved", format!("{recorded_saved:.2}×"));
        row("measured samples saved", format!("{samples_saved:.2}×"));
        row("floor", format!("{floor:.2}×"));
        row("recorded APE delta", format!("{recorded_delta:+.3} pp"));
        row("measured APE delta", format!("{ape_delta:+.3} pp"));
        row("ceiling", format!("{ceiling:+.3} pp"));
        if samples_saved < floor || ape_delta > ceiling {
            println!();
            println!(
                "E15 guard: FAIL ({samples_saved:.2}× vs floor {floor:.2}×, \
                 {ape_delta:+.3} pp vs ceiling {ceiling:+.3} pp)"
            );
            std::process::exit(1);
        }
        println!();
        println!("E15 guard: PASS ({samples_saved:.2}× ≥ {floor:.2}×, {ape_delta:+.3} pp ≤ {ceiling:+.3} pp)");
    } else {
        let mut f = std::fs::File::create(json_path).expect("evidence file");
        writeln!(f, "{{").expect("write");
        writeln!(f, "  \"experiment\": \"e15_adaptive\",").expect("write");
        writeln!(f, "  \"quick\": {quick},").expect("write");
        writeln!(
            f,
            "  \"stock_duration_s\": {},",
            stock_duration.as_secs_f64()
        )
        .expect("write");
        writeln!(
            f,
            "  \"drift_duration_s\": {},",
            drift_duration.as_secs_f64()
        )
        .expect("write");
        writeln!(f, "  \"static_arms\": [").expect("write");
        for (i, arm) in statics.iter().enumerate() {
            writeln!(
                f,
                "    {{\"period_s\": {}, \"slots\": {}, \"sensor_reads\": {}, \
                 \"priced_ns\": {}, \"median_ape_pct\": {:.3}}}{}",
                arm.period_s,
                arm.slots,
                arm.selfcost.sensor_reads,
                arm.selfcost.total_ns(),
                arm.median_ape,
                if i + 1 == statics.len() { "" } else { "," }
            )
            .expect("write");
        }
        writeln!(f, "  ],").expect("write");
        writeln!(
            f,
            "  \"baseline_sensor_reads\": {},",
            baseline.selfcost.sensor_reads
        )
        .expect("write");
        writeln!(
            f,
            "  \"baseline_median_ape_pct\": {:.3},",
            baseline.median_ape
        )
        .expect("write");
        writeln!(
            f,
            "  \"adaptive_sensor_reads\": {},",
            adaptive.selfcost.sensor_reads
        )
        .expect("write");
        writeln!(
            f,
            "  \"adaptive_priced_ns\": {},",
            adaptive.selfcost.total_ns()
        )
        .expect("write");
        writeln!(
            f,
            "  \"adaptive_median_ape_pct\": {:.3},",
            adaptive.median_ape
        )
        .expect("write");
        writeln!(f, "  \"adaptive_ticks\": {},", adaptive.selfcost.ticks).expect("write");
        writeln!(f, "  \"samples_saved_ratio\": {samples_saved:.3},").expect("write");
        writeln!(f, "  \"ape_delta_pp\": {ape_delta:.3},").expect("write");
        writeln!(f, "  \"rate_transitions\": {transitions},").expect("write");
        writeln!(f, "  \"ladder_chain_ok\": {chain_ok},").expect("write");
        writeln!(f, "  \"pareto_dominated\": {},", dominated_by.is_some()).expect("write");
        writeln!(f, "  \"ape_noise_pp\": {APE_NOISE_PP},").expect("write");
        writeln!(f, "  \"static_arms_dominated\": {arms_dominated},").expect("write");
        writeln!(f, "  \"alwayson_first_alarm_s\": {alwayson_alarm_s:.1},").expect("write");
        writeln!(f, "  \"adaptive_first_alarm_s\": {adaptive_alarm_s:.1},").expect("write");
        writeln!(f, "  \"alarm_delta_s\": {alarm_delta_s:.1},").expect("write");
        writeln!(f, "  \"drift_rate_transitions\": {drift_transitions},").expect("write");
        writeln!(f, "  \"drift_sensor_reads\": {},", drift_cost.sensor_reads).expect("write");
        writeln!(f, "  \"verdict\": \"{}\"", if ok { "PASS" } else { "FAIL" }).expect("write");
        writeln!(f, "}}").expect("write");
        println!("        wrote {}", json_path.display());
    }

    println!();
    println!(
        "E15 verdict: {} ({samples_saved:.1}× fewer samples ≥ {MIN_SAMPLES_SAVED}×, \
         {ape_delta:+.2} pp < {MAX_APE_DELTA_PP} pp, Pareto-dominated: {}, \
         drift delay {alarm_delta_s:.1} s ≤ 1 tick, ladder from dump: {chain_ok})",
        if ok { "FRONTIER BEATEN" } else { "MISMATCH" },
        dominated_by.is_some(),
    );

    // The controller's decisions are seed-deterministic, but tick counts
    // couple to real thread arrival (the boundary wait is bounded), so
    // counts and ratios carry loose tolerances per the E7/E9 convention.
    // The hard claims — chain consistency, Pareto position, snap-back —
    // are exact booleans.
    let mut golden = Golden::new(if quick {
        "e15_adaptive.quick"
    } else {
        "e15_adaptive"
    });
    golden.push_exact("ladder_chain_ok", f64::from(chain_ok));
    golden.push_exact("pareto_dominated", f64::from(dominated_by.is_some()));
    golden.push_exact("drift_snapped_back", f64::from(drift_transitions >= 2));
    golden.push_tol("samples_saved_ratio", samples_saved, 0.15);
    golden.push_tol(
        "adaptive_sensor_reads",
        adaptive.selfcost.sensor_reads as f64,
        0.15,
    );
    golden.push_exact(
        "baseline_sensor_reads",
        baseline.selfcost.sensor_reads as f64,
    );
    golden.push_tol("baseline_median_ape_pct", baseline.median_ape, 0.10);
    golden.push_tol("adaptive_median_ape_pct", adaptive.median_ape, 0.10);
    golden.push_tol("rate_transitions", transitions as f64, 0.34);
    golden.push_tol("alarm_delta_s", alarm_delta_s + 1.0, 1.0);
    golden.settle();

    if !ok {
        std::process::exit(1);
    }
}
