//! Experiment E14 — the fleet observability plane, proven from its own
//! exhaust. The E12 chaos arms are replayed with cgrouped tenants and a
//! declared lag SLO, each arm writes a post-mortem dump (journal,
//! Chrome trace with per-frame journey tracks, Prometheus metrics), and
//! the bench then **reads only the dump files back** to show the plane
//! is self-describing:
//!
//! * **journey reconstruction** — every frame's causal track (produce →
//!   send per attempt → apply/drop/shed/abandon) is regrouped from
//!   `trace.json` alone; ≥95 % of produced frames must reconstruct with
//!   a single origin trace id, contiguous transmission attempts and a
//!   decided (or honestly in-flight) fate;
//! * **latency surface** — `metrics.prom` must carry the
//!   `powerapi_fleet_lag_ticks` p50/p95/p99 rows plus per-link latency,
//!   per-shard service-time and retransmit-count histograms;
//! * **lag SLO** — the saturated arm must journal burn-rate alerts and
//!   exhaust its error budget, which is what triggers its post-mortem
//!   dump (reason `slo-budget-exhausted`);
//! * **estimate provenance** — `Fleet::explain` names the host frames
//!   behind a tenant estimate and its JSON round-trips exactly.
//!
//! Run:   `cargo run --release -p bench-suite --bin e14_fleet_observe`
//! Quick: `... -- --quick`   (CI smoke: 40 hosts, shorter run)
//! Gate:  `... -- --check`   (golden check + journeys/s regression guard)
//! Data:  `BENCH_fleet_observe.json` (repo root, committed as evidence)

use bench_suite::fleetsim::{
    self, fleet_faults, json_number, percentile, FleetRun, FleetSpec, WARMUP_TICKS,
};
use bench_suite::{row, section, BenchArgs, Golden};
use powerapi::fleet::{LinkFaultPlan, ProvenanceReport, ShardConfig, SloConfig};
use powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi::model::learn::{learn_model, LearnConfig};
use powerapi::telemetry::export::{parse_json, Json};
use powerapi::telemetry::{write_post_mortem_with_fleet, EventKind};
use simcpu::presets;
use simcpu::units::Nanos;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Acceptance bound: fraction of produced frames whose journey must
/// reconstruct end-to-end from the dump alone.
const MIN_RECONSTRUCTED: f64 = 0.95;
/// Regression-guard tolerance: fail when >20 % below the recorded value.
const GUARD_DROP: f64 = 0.20;
/// The saturated arm is fixed (quick-sized) so full runs record and CI
/// re-measures the same workload — and so its dump feeds the guard.
const SAT_HOSTS: usize = 40;
const SAT_TICKS: u64 = 24;

/// One journey hop as read back from `trace.json` (nothing but the dump
/// feeds this).
struct DumpHop {
    name: String,
    trace: u64,
    attempt: u64,
}

/// What one arm's dump reconstructs to.
struct Reconstruction {
    /// Frames produced, per `metrics.prom`.
    produced: u64,
    /// Journey tracks found in `trace.json`.
    tracks: u64,
    /// Tracks telling a complete story with a decided fate.
    fate_decided: u64,
    /// Complete tracks still honestly in flight at dump time.
    in_flight: u64,
    /// Tracks that failed reconstruction (missing produce, mixed trace
    /// ids, gapped attempts).
    malformed: u64,
    /// Tracks whose story includes at least one retransmission.
    retransmit_tracks: u64,
    /// `slo-burn-rate` events in `journal.jsonl`.
    burn_alerts: u64,
    /// `slo-budget-exhausted` events in `journal.jsonl`.
    budget_exhausted: u64,
    /// All lag-histogram percentile rows present in `metrics.prom`.
    lag_rows_present: bool,
    /// Link-latency, shard-service and retransmit-count histograms
    /// present in `metrics.prom`.
    latency_rows_present: bool,
}

impl Reconstruction {
    /// Fraction of produced frames reconstructed end-to-end (decided
    /// fate or honestly in flight).
    fn ratio(&self) -> f64 {
        (self.fate_decided + self.in_flight) as f64 / self.produced.max(1) as f64
    }
}

/// A hop name that decides (or progresses past) a frame's fate —
/// anything but the produce/send spine.
fn is_fate(name: &str) -> bool {
    !matches!(name, "produce" | "send")
}

/// Regroups `trace.json`'s fleet instants into per-frame tracks:
/// one (pid, tid) pair is one frame's journey, in timestamp order.
fn journey_tracks(trace_text: &str) -> BTreeMap<(u64, u64), Vec<DumpHop>> {
    let json = parse_json(trace_text).expect("dump trace.json parses");
    let events = json
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    let mut tracks: BTreeMap<(u64, u64), Vec<DumpHop>> = BTreeMap::new();
    for ev in events {
        if ev.get("cat").and_then(Json::as_str) != Some("fleet") {
            continue;
        }
        let pid = ev.get("pid").and_then(Json::as_u64).expect("fleet pid");
        let tid = ev.get("tid").and_then(Json::as_u64).expect("fleet tid");
        let name = ev.get("name").and_then(Json::as_str).expect("hop name");
        let args = ev.get("args").expect("hop args");
        tracks.entry((pid, tid)).or_default().push(DumpHop {
            name: name.to_string(),
            trace: args.get("trace").and_then(Json::as_u64).unwrap_or(0),
            attempt: args.get("attempt").and_then(Json::as_u64).unwrap_or(0),
        });
    }
    tracks
}

/// Pulls `name <value>` out of Prometheus text (exact name match up to
/// the value separator, labels included).
fn prom_number(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|l| {
        let rest = l.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

/// Reconstructs one arm's story from its dump directory — and nothing
/// else. The fleet that wrote it is out of scope on purpose.
fn reconstruct(dir: &Path) -> Reconstruction {
    let trace_text = std::fs::read_to_string(dir.join("trace.json")).expect("dump trace.json");
    let journal_text =
        std::fs::read_to_string(dir.join("journal.jsonl")).expect("dump journal.jsonl");
    let prom = std::fs::read_to_string(dir.join("metrics.prom")).expect("dump metrics.prom");

    let produced = prom_number(&prom, "powerapi_fleet_frames_produced_total")
        .expect("produced counter in metrics.prom") as u64;

    let tracks = journey_tracks(&trace_text);
    let (mut fate_decided, mut in_flight, mut malformed, mut retransmit_tracks) = (0, 0, 0, 0);
    for hops in tracks.values() {
        let produce_first = hops.first().is_some_and(|h| h.name == "produce");
        let one_trace = hops
            .iter()
            .all(|h| h.trace == hops[0].trace && h.trace != 0);
        // Transmission attempts (sends and their counted losses) must
        // cover 0..=max with no gaps — a gap means a hop went missing.
        let mut attempts: Vec<u64> = hops
            .iter()
            .filter(|h| {
                matches!(
                    h.name.as_str(),
                    "send" | "drop-fault" | "drop-partition" | "drop-queue"
                )
            })
            .map(|h| h.attempt)
            .collect();
        attempts.sort_unstable();
        attempts.dedup();
        let contiguous = attempts.iter().enumerate().all(|(i, &a)| a == i as u64);
        if produce_first && one_trace && contiguous {
            if hops.last().is_some_and(|h| is_fate(&h.name)) {
                fate_decided += 1;
            } else {
                in_flight += 1;
            }
            if attempts.len() > 1 {
                retransmit_tracks += 1;
            }
        } else {
            malformed += 1;
        }
    }

    let events = powerapi::telemetry::parse_jsonl(&journal_text).expect("dump journal parses");
    let burn_alerts = events
        .iter()
        .filter(|e| e.kind == EventKind::SloBurnRate)
        .count() as u64;
    let budget_exhausted = events
        .iter()
        .filter(|e| e.kind == EventKind::SloBudgetExhausted)
        .count() as u64;

    let lag_rows_present = ["_p50", "_p95", "_p99"]
        .iter()
        .all(|q| prom.contains(&format!("powerapi_fleet_lag_ticks{q}")));
    let latency_rows_present = prom
        .contains("powerapi_fleet_link_latency_ticks_bucket{host=\"host-0\"")
        && prom.contains("powerapi_fleet_shard_service_ticks_bucket{shard=\"0\"")
        && prom.contains("powerapi_fleet_retransmit_count_bucket");

    Reconstruction {
        produced,
        tracks: tracks.len() as u64,
        fate_decided,
        in_flight,
        malformed,
        retransmit_tracks,
        burn_alerts,
        budget_exhausted,
        lag_rows_present,
        latency_rows_present,
    }
}

/// Runs one arm with cgrouped tenant hosts and dumps its post-mortem:
/// unconditionally for the clean/faulty arms (`reason: requested`), and
/// as the SLO-exhaustion dump when the budget actually blew.
fn run_and_dump(spec: FleetSpec, formula: &PerFrequencyFormula, dir: &Path) -> FleetRun {
    let run = fleetsim::run_fleet(spec, formula, fleetsim::make_tenant_source);
    let reason = if run.fleet.slo().exhausted() {
        "slo-budget-exhausted"
    } else {
        "requested"
    };
    write_post_mortem_with_fleet(
        dir,
        &run.telemetry,
        &run.fleet.journeys().snapshot(),
        run.fleet.tick_ns(),
        Nanos(0),
        reason,
    )
    .expect("post-mortem dump");
    run
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    section(if quick {
        "E14: fleet observability plane (quick)"
    } else {
        "E14: fleet observability plane"
    });

    let (hosts, ticks, shards) = if quick { (40, 24, 4) } else { (120, 48, 6) };
    let dump_root = PathBuf::from("target/e14_fleet_observe");

    println!("  [1/5] learning the energy profile on the i3 testbed…");
    let model = learn_model(presets::intel_i3_2120(), &LearnConfig::quick()).expect("learning");
    let formula = PerFrequencyFormula::new(model);

    println!("  [2/5] clean arm: {hosts} tenant hosts × {ticks} ticks, {shards} shards…");
    let clean = run_and_dump(
        FleetSpec::clean(hosts, ticks, shards),
        &formula,
        &dump_root.join("clean"),
    );

    println!("  [3/5] faulty arm: E12 fault schedule over the same tenant hosts…");
    let faulty = run_and_dump(
        FleetSpec {
            hosts,
            ticks,
            shards,
            shard: ShardConfig::default(),
            fault: fleet_faults(hosts, ticks),
            slo: SloConfig::default(),
        },
        &formula,
        &dump_root.join("faulty"),
    );
    if let Some(path) = &args.dump_trace {
        fleetsim::dump_fleet_trace(
            &faulty.telemetry,
            &faulty.fleet.journeys().snapshot(),
            faulty.fleet.tick_ns(),
            path,
        );
    }

    println!("  [4/5] saturated arm: every host into one under-provisioned shard…");
    // The saturated arm declares a production-strength SLO (a quarter of
    // the default error budget, alerts at 4 violations per window): an
    // under-provisioned shard must burn through it, journal the alerts
    // and trigger the exhaustion post-mortem.
    let saturated = run_and_dump(
        FleetSpec {
            hosts: SAT_HOSTS,
            ticks: SAT_TICKS,
            shards: 1,
            shard: ShardConfig {
                ingest_cap: 16,
                tick_budget: 8,
                ..ShardConfig::default()
            },
            fault: LinkFaultPlan::none(),
            slo: SloConfig {
                error_budget: 16,
                burn_alert_violations: 4,
                ..SloConfig::default()
            },
        },
        &formula,
        &dump_root.join("saturated"),
    );

    println!("  [5/5] reconstructing journeys from the dumps alone…");
    let clean_r = reconstruct(&dump_root.join("clean"));
    let faulty_r = reconstruct(&dump_root.join("faulty"));
    let sat_r = reconstruct(&dump_root.join("saturated"));

    // Estimate provenance: which host frames back the gold tenant's
    // watts right now, and does the explanation survive its own JSON.
    let explain_tick = faulty.fleet.now();
    let report = faulty
        .fleet
        .explain("tenant-gold", explain_tick)
        .expect("gold tenant is attributable");
    let round = ProvenanceReport::from_json(&report.to_json()).expect("provenance parses");
    assert_eq!(report, round, "provenance JSON must round-trip exactly");
    assert_eq!(
        report.to_json(),
        round.to_json(),
        "provenance serialization must be a fixed point"
    );
    let explain_retransmits: u32 = report.hosts.iter().map(|h| h.retransmits).sum();

    // The SLO story, from the live trackers (the dumps told it above).
    let slo_violations = faulty.fleet.slo().total_violations();
    let sat_violations = saturated.fleet.slo().total_violations();
    let sat_exhausted = saturated.fleet.slo().exhausted();

    // Lag percentiles straight from the shared histogram bounds — the
    // same numbers the metrics.prom rows carry.
    let mut faulty_lags = faulty.fleet.lag_samples().to_vec();
    faulty_lags.sort_unstable();
    let lag_p50 = percentile(&faulty_lags, 0.50);
    let lag_p99 = percentile(&faulty_lags, 0.99);

    // Scoring floor: the observability plane must not change the
    // estimates — same MAE recipe as E12 over the clean arm.
    let scored = &clean.reports[WARMUP_TICKS.min(clean.reports.len() - 1)..];
    let clean_mae_w = scored
        .iter()
        .map(|r| (r.estimate_w - r.truth_w).abs())
        .sum::<f64>()
        / scored.len().max(1) as f64;

    // Reconstruction throughput guard: re-parse and regroup the fixed
    // saturated dump until ≥0.5 s has elapsed. The clean/faulty arm
    // sizes change with --quick; this dump never does.
    let sat_trace = std::fs::read_to_string(dump_root.join("saturated/trace.json")).expect("dump");
    let mut journeys = 0u64;
    let t0 = Instant::now();
    while t0.elapsed().as_secs_f64() < 0.5 {
        journeys += journey_tracks(&sat_trace).len() as u64;
    }
    let guard_journeys_per_s = journeys as f64 / t0.elapsed().as_secs_f64();

    section("journey reconstruction (from dump files only)");
    for (label, r) in [
        ("clean", &clean_r),
        ("faulty", &faulty_r),
        ("saturated", &sat_r),
    ] {
        row(
            &format!("{label}: produced / tracks in dump"),
            format!("{} / {}", r.produced, r.tracks),
        );
        row(
            &format!("{label}: fate-decided + in-flight / malformed"),
            format!("{} + {} / {}", r.fate_decided, r.in_flight, r.malformed),
        );
        row(
            &format!("{label}: reconstructed end-to-end"),
            format!(
                "{:.1} % (bound ≥ {:.0} %)",
                r.ratio() * 100.0,
                MIN_RECONSTRUCTED * 100.0
            ),
        );
    }
    row(
        "faulty: retransmit journeys recovered",
        faulty_r.retransmit_tracks,
    );

    section("SLO + provenance");
    row(
        "faulty lag p50/p99 (histogram source)",
        format!("{lag_p50}/{lag_p99} ticks"),
    );
    row("faulty SLO violations", slo_violations);
    row(
        "saturated SLO violations / exhausted",
        format!("{sat_violations} / {sat_exhausted}"),
    );
    row("saturated burn-rate alerts journaled", sat_r.burn_alerts);
    row(
        "explain(tenant-gold): contributing hosts",
        format!(
            "{} ({} retransmits behind them)",
            report.hosts.len(),
            explain_retransmits
        ),
    );
    row("clean fleet MAE", format!("{clean_mae_w:.3} W"));
    row(
        "guard journeys/s (saturated dump)",
        format!("{guard_journeys_per_s:.0}"),
    );

    let ok = clean_r.ratio() >= MIN_RECONSTRUCTED
        && faulty_r.ratio() >= MIN_RECONSTRUCTED
        && sat_r.ratio() >= MIN_RECONSTRUCTED
        && clean_r.malformed == 0
        && faulty_r.malformed == 0
        && sat_r.malformed == 0
        && faulty_r.retransmit_tracks > 0
        && sat_r.burn_alerts >= 1
        && sat_r.budget_exhausted >= 1
        && sat_exhausted
        && clean_r.lag_rows_present
        && faulty_r.lag_rows_present
        && sat_r.lag_rows_present
        && clean_r.latency_rows_present
        && faulty_r.latency_rows_present
        && report.hosts.len() == hosts
        && clean_r.burn_alerts == 0;

    let json_path = std::path::Path::new("BENCH_fleet_observe.json");
    if args.check {
        // Regression guard: compare against the committed evidence file
        // without rewriting it (mirrors E12's gate).
        let recorded = std::fs::read_to_string(json_path)
            .ok()
            .as_deref()
            .and_then(|t| json_number(t, "guard_journeys_per_s"))
            .unwrap_or_else(|| {
                eprintln!(
                    "no guard_journeys_per_s in BENCH_fleet_observe.json — run e14_fleet_observe first"
                );
                std::process::exit(2);
            });
        let floor = recorded * (1.0 - GUARD_DROP);
        section("E14 journey-reconstruction regression guard");
        row("recorded journeys/s", format!("{recorded:.0}"));
        row("measured journeys/s", format!("{guard_journeys_per_s:.0}"));
        row("floor (−20 %)", format!("{floor:.0}"));
        if guard_journeys_per_s < floor {
            println!();
            println!("E14 guard: FAIL ({guard_journeys_per_s:.0} journeys/s vs floor {floor:.0})");
            std::process::exit(1);
        }
        println!();
        println!("E14 guard: PASS ({guard_journeys_per_s:.0} journeys/s vs floor {floor:.0})");
    } else {
        let mut f = std::fs::File::create(json_path).expect("evidence file");
        writeln!(f, "{{").expect("write");
        writeln!(f, "  \"experiment\": \"e14_fleet_observe\",").expect("write");
        writeln!(f, "  \"quick\": {quick},").expect("write");
        writeln!(f, "  \"hosts\": {hosts},").expect("write");
        writeln!(f, "  \"ticks\": {ticks},").expect("write");
        writeln!(f, "  \"shards\": {shards},").expect("write");
        writeln!(f, "  \"clean_produced\": {},", clean_r.produced).expect("write");
        writeln!(f, "  \"clean_tracks\": {},", clean_r.tracks).expect("write");
        writeln!(f, "  \"clean_fate_decided\": {},", clean_r.fate_decided).expect("write");
        writeln!(f, "  \"clean_in_flight\": {},", clean_r.in_flight).expect("write");
        writeln!(
            f,
            "  \"clean_reconstructed_ratio\": {:.4},",
            clean_r.ratio()
        )
        .expect("write");
        writeln!(f, "  \"faulty_produced\": {},", faulty_r.produced).expect("write");
        writeln!(f, "  \"faulty_tracks\": {},", faulty_r.tracks).expect("write");
        writeln!(f, "  \"faulty_fate_decided\": {},", faulty_r.fate_decided).expect("write");
        writeln!(f, "  \"faulty_in_flight\": {},", faulty_r.in_flight).expect("write");
        writeln!(f, "  \"faulty_malformed\": {},", faulty_r.malformed).expect("write");
        writeln!(
            f,
            "  \"faulty_reconstructed_ratio\": {:.4},",
            faulty_r.ratio()
        )
        .expect("write");
        writeln!(
            f,
            "  \"faulty_retransmit_tracks\": {},",
            faulty_r.retransmit_tracks
        )
        .expect("write");
        writeln!(f, "  \"saturated_produced\": {},", sat_r.produced).expect("write");
        writeln!(f, "  \"saturated_tracks\": {},", sat_r.tracks).expect("write");
        writeln!(
            f,
            "  \"saturated_reconstructed_ratio\": {:.4},",
            sat_r.ratio()
        )
        .expect("write");
        writeln!(f, "  \"saturated_burn_alerts\": {},", sat_r.burn_alerts).expect("write");
        writeln!(
            f,
            "  \"saturated_budget_exhausted\": {},",
            sat_r.budget_exhausted
        )
        .expect("write");
        writeln!(f, "  \"faulty_slo_violations\": {slo_violations},").expect("write");
        writeln!(f, "  \"saturated_slo_violations\": {sat_violations},").expect("write");
        writeln!(f, "  \"faulty_lag_p50_ticks\": {lag_p50},").expect("write");
        writeln!(f, "  \"faulty_lag_p99_ticks\": {lag_p99},").expect("write");
        writeln!(f, "  \"explain_hosts\": {},", report.hosts.len()).expect("write");
        writeln!(f, "  \"explain_retransmits\": {explain_retransmits},").expect("write");
        writeln!(f, "  \"clean_mae_w\": {clean_mae_w:.4},").expect("write");
        writeln!(f, "  \"guard_journeys_per_s\": {guard_journeys_per_s:.2},").expect("write");
        writeln!(f, "  \"verdict\": \"{}\"", if ok { "PASS" } else { "FAIL" }).expect("write");
        writeln!(f, "}}").expect("write");
        println!("        wrote {}", json_path.display());
    }

    println!();
    println!(
        "E14 verdict: {} ({:.1}/{:.1}/{:.1} % journeys reconstructed, {} burn alerts, \
         budget exhausted = {}, provenance round-trips)",
        if ok {
            "SELF-DESCRIBING"
        } else {
            "DUMP INCOMPLETE"
        },
        clean_r.ratio() * 100.0,
        faulty_r.ratio() * 100.0,
        sat_r.ratio() * 100.0,
        sat_r.burn_alerts,
        sat_exhausted,
    );

    // Everything the single-threaded fleet derives is exact; the ratios
    // are integer quotients and the MAE is deterministic float math.
    let mut golden = Golden::new(if quick {
        "e14_fleet_observe.quick"
    } else {
        "e14_fleet_observe"
    });
    golden.push_exact("clean_produced", clean_r.produced as f64);
    golden.push_exact("clean_tracks", clean_r.tracks as f64);
    golden.push_exact("clean_fate_decided", clean_r.fate_decided as f64);
    golden.push_exact("clean_in_flight", clean_r.in_flight as f64);
    golden.push_exact("clean_malformed", clean_r.malformed as f64);
    golden.push_exact("faulty_produced", faulty_r.produced as f64);
    golden.push_exact("faulty_tracks", faulty_r.tracks as f64);
    golden.push_exact("faulty_fate_decided", faulty_r.fate_decided as f64);
    golden.push_exact("faulty_in_flight", faulty_r.in_flight as f64);
    golden.push_exact("faulty_malformed", faulty_r.malformed as f64);
    golden.push_exact(
        "faulty_retransmit_tracks",
        faulty_r.retransmit_tracks as f64,
    );
    golden.push_exact("saturated_produced", sat_r.produced as f64);
    golden.push_exact("saturated_tracks", sat_r.tracks as f64);
    golden.push_exact("saturated_fate_decided", sat_r.fate_decided as f64);
    golden.push_exact("saturated_burn_alerts", sat_r.burn_alerts as f64);
    golden.push_exact("saturated_budget_exhausted", sat_r.budget_exhausted as f64);
    golden.push_exact("faulty_slo_violations", slo_violations as f64);
    golden.push_exact("saturated_slo_violations", sat_violations as f64);
    golden.push_exact("faulty_lag_p50_ticks", lag_p50 as f64);
    golden.push_exact("faulty_lag_p99_ticks", lag_p99 as f64);
    golden.push_exact("explain_hosts", report.hosts.len() as f64);
    golden.push_exact("explain_retransmits", f64::from(explain_retransmits));
    golden.push("clean_mae_w", clean_mae_w);
    golden.settle();

    if !ok {
        std::process::exit(1);
    }
}
