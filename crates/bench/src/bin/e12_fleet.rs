//! Experiment E12 — fleet transport: N simulated hosts streaming batched
//! tick frames over fault-injected links to a sharded central estimator.
//! Three arms, same hosts, same cpu-load formula:
//!
//! * **clean** — perfect links: the lag/accuracy floor;
//! * **faulty** — 5 % frame loss plus duplicate/corrupt/reorder faults,
//!   two 10-tick partition windows and host-dark windows: the fleet must
//!   hold its aggregate error within 1.10× of the clean arm by riding
//!   retransmits, last-known-good hold-over and widened bands;
//! * **saturated** — every host aimed at one under-provisioned shard:
//!   ingest must shed loudly (counted, journaled) while the aggregate
//!   keeps reporting with honest quality tags.
//!
//! Every arm ends with the conservation assertion: produced frames are
//! applied, counted against an explicit loss cause, or still visibly
//! queued — transmissions, drops, sheds and retransmits reconcile
//! exactly. Nothing is lost silently.
//!
//! Run:   `cargo run --release -p bench-suite --bin e12_fleet`
//! Quick: `... -- --quick`   (CI smoke: 40 hosts, shorter run)
//! Gate:  `... -- --check`   (golden check + frames/s regression guard)
//! Data:  `BENCH_fleet.json` (repo root, committed as evidence)

use bench_suite::fleetsim::{
    self, fleet_faults, json_number, percentile, FleetSpec, FLEET_SEED, WARMUP_TICKS,
};
use bench_suite::{row, section, BenchArgs, Golden};
use powerapi::fleet::{FleetHop, FleetStats, HostId, LinkFaultPlan, ShardConfig, SloConfig};
use powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi::model::learn::{learn_model, LearnConfig};
use powerapi::telemetry::{EventKind, Telemetry};
use simcpu::presets;
use std::io::Write;

/// Acceptance bound: faulty-arm MAE within this factor of clean.
const MAX_ERROR_RATIO: f64 = 1.10;
/// Regression-guard tolerance: fail when >20 % below the recorded value.
const GUARD_DROP: f64 = 0.20;
/// The guard scenario is fixed (quick-sized, clean links) so full runs
/// record and CI re-measures the same workload.
const GUARD_HOSTS: usize = 40;
const GUARD_TICKS: u64 = 24;

/// Everything one arm produces.
struct Arm {
    stats: FleetStats,
    /// Fleet-aggregate estimate per tick (whole run, warmup included).
    est_w: Vec<f64>,
    mae_w: f64,
    lag_p50: u64,
    lag_p99: u64,
    stale_mean: f64,
    stale_max: f64,
    shard_shed: u64,
    wall_s: f64,
    telemetry: Telemetry,
    /// Per-frame journey hops (for `--dump-trace`).
    hops: Vec<FleetHop>,
    /// Sim-clock nanoseconds per fleet tick (for `--dump-trace`).
    tick_ns: u64,
}

/// Runs one arm and scores it. Ends with the no-silent-loss accounting
/// assertion (inside [`fleetsim::run_fleet`]): the run aborts if any
/// frame fate went uncounted.
fn run_arm(
    hosts: usize,
    ticks: u64,
    shards: usize,
    shard: ShardConfig,
    fault: LinkFaultPlan,
    formula: &PerFrequencyFormula,
) -> Arm {
    let run = fleetsim::run_fleet(
        FleetSpec {
            hosts,
            ticks,
            shards,
            shard,
            fault,
            slo: SloConfig::default(),
        },
        formula,
        fleetsim::make_source,
    );
    let reports = &run.reports;

    let scored = &reports[WARMUP_TICKS.min(reports.len() - 1)..];
    let mae_w = scored
        .iter()
        .map(|r| (r.estimate_w - r.truth_w).abs())
        .sum::<f64>()
        / scored.len().max(1) as f64;

    let mut lags = run.fleet.lag_samples().to_vec();
    lags.sort_unstable();
    let ratios: Vec<f64> = (0..hosts)
        .map(|h| run.fleet.staleness_ratio(HostId(h as u32)))
        .collect();
    let stale_mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    let stale_max = ratios.iter().fold(0.0f64, |a, &b| a.max(b));

    Arm {
        stats: *run.fleet.stats(),
        est_w: reports.iter().map(|r| r.estimate_w).collect(),
        mae_w,
        lag_p50: percentile(&lags, 0.50),
        lag_p99: percentile(&lags, 0.99),
        stale_mean,
        stale_max,
        shard_shed: run.fleet.shard_shed_by().iter().sum(),
        wall_s: run.wall_s,
        hops: run.fleet.journeys().snapshot(),
        tick_ns: run.fleet.tick_ns(),
        telemetry: run.telemetry,
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    section(if quick {
        "E12: fleet transport under link faults (quick)"
    } else {
        "E12: fleet transport under link faults"
    });

    let (hosts, ticks, shards) = if quick { (40, 24, 4) } else { (200, 60, 8) };

    println!("  [1/5] learning the energy profile on the i3 testbed…");
    let model = learn_model(presets::intel_i3_2120(), &LearnConfig::quick()).expect("learning");
    let formula = PerFrequencyFormula::new(model);

    println!("  [2/5] clean arm: {hosts} hosts × {ticks} ticks, {shards} shards, perfect links…");
    let clean = run_arm(
        hosts,
        ticks,
        shards,
        ShardConfig::default(),
        LinkFaultPlan::none(),
        &formula,
    );

    println!("  [3/5] faulty arm: 5 % loss, dup/corrupt/reorder, 2 partitions, dark windows…");
    let faulty = run_arm(
        hosts,
        ticks,
        shards,
        ShardConfig::default(),
        fleet_faults(hosts, ticks),
        &formula,
    );
    // `--dump-trace` captures the interesting arm: the faulty run's
    // pipeline spans, journal instants and per-frame journey tracks.
    if let Some(path) = &args.dump_trace {
        fleetsim::dump_fleet_trace(&faulty.telemetry, &faulty.hops, faulty.tick_ns, path);
    }

    println!("  [4/5] saturated arm: every host into one under-provisioned shard…");
    let saturated = run_arm(
        GUARD_HOSTS,
        GUARD_TICKS,
        1,
        ShardConfig {
            ingest_cap: 16,
            tick_budget: 8,
            ..ShardConfig::default()
        },
        LinkFaultPlan::none(),
        &formula,
    );

    println!("  [5/5] guard run, scoring and writing evidence…");
    // Fixed-size clean run for the wall-clock regression guard (the arm
    // sizes change with --quick; this one never does).
    let guard = run_arm(
        GUARD_HOSTS,
        GUARD_TICKS,
        4,
        ShardConfig::default(),
        LinkFaultPlan::none(),
        &formula,
    );
    let guard_frames_per_s = guard.stats.applied as f64 / guard.wall_s.max(1e-9);

    let s = faulty.stats;
    let journal = faulty.telemetry.journal();
    let shed_events = journal.count(EventKind::FleetShed);
    let retry_events = journal.count(EventKind::FleetRetry);
    let timeout_events = journal.count(EventKind::FleetTimeout);
    let partition_events = journal.count(EventKind::FleetPartition);
    let prom = faulty.telemetry.render_prometheus();

    section("faulty-arm frame accounting (conserved exactly)");
    row("frames produced", s.produced);
    row("link transmissions", s.transmissions);
    row("  of which retransmits", s.retransmits);
    row("duplicate copies injected", s.dup_injected);
    row("dropped: link fault", s.dropped_fault);
    row("dropped: partition", s.dropped_partition);
    row("dropped: queue full", s.dropped_queue);
    row("lost: host dark", s.dark_lost);
    row("shed: sender backlog", s.sender_shed);
    row("shed: shard ingest", s.shard_shed);
    row("corrupt at shard", s.corrupt_frames);
    row("applied", s.applied);
    row("duplicates discarded", s.dup_discarded);
    row("abandoned (budget exhausted)", s.abandoned);
    row(
        "stale transitions / recoveries",
        format!("{} / {}", s.stale_transitions, s.recoveries),
    );
    row(
        "journaled shed/retry/timeout/partition",
        format!("{shed_events}/{retry_events}/{timeout_events}/{partition_events}"),
    );

    section("E12 headline numbers");
    row("clean fleet MAE", format!("{:.3} W", clean.mae_w));
    row("faulty fleet MAE", format!("{:.3} W", faulty.mae_w));
    let ratio = faulty.mae_w / clean.mae_w.max(1e-9);
    row(
        "faulty / clean error ratio",
        format!("{ratio:.3}× (bound {MAX_ERROR_RATIO}×)"),
    );
    // Identical hosts under both arms, so the per-tick estimate gap is
    // *pure* transport effect — lag, hold-over and loss — with the
    // (shared) model bias cancelled out.
    let divergence_w = clean.est_w[WARMUP_TICKS..]
        .iter()
        .zip(&faulty.est_w[WARMUP_TICKS..])
        .map(|(c, f)| (c - f).abs())
        .sum::<f64>()
        / clean.est_w[WARMUP_TICKS..].len().max(1) as f64;
    row(
        "transport divergence (faulty vs clean est)",
        format!("{divergence_w:.3} W"),
    );
    row(
        "estimate lag p50/p99 (clean)",
        format!("{}/{} ticks", clean.lag_p50, clean.lag_p99),
    );
    row(
        "estimate lag p50/p99 (faulty)",
        format!("{}/{} ticks", faulty.lag_p50, faulty.lag_p99),
    );
    row(
        "staleness ratio mean/max (faulty)",
        format!("{:.4} / {:.4}", faulty.stale_mean, faulty.stale_max),
    );
    row(
        "saturated arm: shard sheds",
        format!("{} (still conserved)", saturated.shard_shed),
    );
    row(
        "guard frames/s (clean, fixed size)",
        format!("{guard_frames_per_s:.0}"),
    );

    let ok = ratio <= MAX_ERROR_RATIO
        && s.dropped_fault > 0
        && s.dropped_partition > 0
        && s.retransmits > 0
        && s.stale_transitions > 0
        && s.recoveries > 0
        && clean.stats.dropped_fault == 0
        && clean.stats.retransmits == 0
        && saturated.shard_shed > 0
        && shed_events > 0
        && retry_events > 0
        && timeout_events > 0
        && partition_events > 0
        && prom.contains("powerapi_fleet_retransmits_total")
        && prom.contains("powerapi_fleet_shard_shed_total{shard=\"0\"}");

    let json_path = std::path::Path::new("BENCH_fleet.json");
    if args.check {
        // Regression guard: compare against the committed evidence file
        // without rewriting it (mirrors E11's gate).
        let recorded = std::fs::read_to_string(json_path)
            .ok()
            .as_deref()
            .and_then(|t| json_number(t, "guard_frames_per_s"))
            .unwrap_or_else(|| {
                eprintln!("no guard_frames_per_s in BENCH_fleet.json — run e12_fleet first");
                std::process::exit(2);
            });
        let floor = recorded * (1.0 - GUARD_DROP);
        section("E12 frames/s regression guard");
        row("recorded frames/s", format!("{recorded:.0}"));
        row("measured frames/s", format!("{guard_frames_per_s:.0}"));
        row("floor (−20 %)", format!("{floor:.0}"));
        if guard_frames_per_s < floor {
            println!();
            println!("E12 guard: FAIL ({guard_frames_per_s:.0} frames/s vs floor {floor:.0})");
            std::process::exit(1);
        }
        println!();
        println!("E12 guard: PASS ({guard_frames_per_s:.0} frames/s vs floor {floor:.0})");
    } else {
        let mut f = std::fs::File::create(json_path).expect("evidence file");
        writeln!(f, "{{").expect("write");
        writeln!(f, "  \"experiment\": \"e12_fleet\",").expect("write");
        writeln!(f, "  \"quick\": {quick},").expect("write");
        writeln!(f, "  \"hosts\": {hosts},").expect("write");
        writeln!(f, "  \"ticks\": {ticks},").expect("write");
        writeln!(f, "  \"shards\": {shards},").expect("write");
        writeln!(f, "  \"fleet_seed\": {FLEET_SEED},").expect("write");
        writeln!(f, "  \"clean_mae_w\": {:.4},", clean.mae_w).expect("write");
        writeln!(f, "  \"faulty_mae_w\": {:.4},", faulty.mae_w).expect("write");
        writeln!(f, "  \"error_ratio\": {ratio:.4},").expect("write");
        writeln!(f, "  \"transport_divergence_w\": {divergence_w:.4},").expect("write");
        writeln!(f, "  \"clean_lag_p50_ticks\": {},", clean.lag_p50).expect("write");
        writeln!(f, "  \"clean_lag_p99_ticks\": {},", clean.lag_p99).expect("write");
        writeln!(f, "  \"faulty_lag_p50_ticks\": {},", faulty.lag_p50).expect("write");
        writeln!(f, "  \"faulty_lag_p99_ticks\": {},", faulty.lag_p99).expect("write");
        writeln!(f, "  \"staleness_mean\": {:.4},", faulty.stale_mean).expect("write");
        writeln!(f, "  \"staleness_max\": {:.4},", faulty.stale_max).expect("write");
        writeln!(f, "  \"frames_produced\": {},", s.produced).expect("write");
        writeln!(f, "  \"transmissions\": {},", s.transmissions).expect("write");
        writeln!(f, "  \"retransmits\": {},", s.retransmits).expect("write");
        writeln!(f, "  \"dup_injected\": {},", s.dup_injected).expect("write");
        writeln!(f, "  \"dropped_fault\": {},", s.dropped_fault).expect("write");
        writeln!(f, "  \"dropped_partition\": {},", s.dropped_partition).expect("write");
        writeln!(f, "  \"dropped_queue\": {},", s.dropped_queue).expect("write");
        writeln!(f, "  \"dark_lost\": {},", s.dark_lost).expect("write");
        writeln!(f, "  \"sender_shed\": {},", s.sender_shed).expect("write");
        writeln!(f, "  \"shard_shed\": {},", s.shard_shed).expect("write");
        writeln!(f, "  \"corrupt_frames\": {},", s.corrupt_frames).expect("write");
        writeln!(f, "  \"applied\": {},", s.applied).expect("write");
        writeln!(f, "  \"dup_discarded\": {},", s.dup_discarded).expect("write");
        writeln!(f, "  \"abandoned\": {},", s.abandoned).expect("write");
        writeln!(f, "  \"stale_transitions\": {},", s.stale_transitions).expect("write");
        writeln!(f, "  \"recoveries\": {},", s.recoveries).expect("write");
        writeln!(f, "  \"saturated_shard_shed\": {},", saturated.shard_shed).expect("write");
        writeln!(f, "  \"journal_shed_events\": {shed_events},").expect("write");
        writeln!(f, "  \"journal_retry_events\": {retry_events},").expect("write");
        writeln!(f, "  \"journal_timeout_events\": {timeout_events},").expect("write");
        writeln!(f, "  \"journal_partition_events\": {partition_events},").expect("write");
        writeln!(f, "  \"guard_frames_per_s\": {guard_frames_per_s:.2},").expect("write");
        writeln!(f, "  \"verdict\": \"{}\"", if ok { "PASS" } else { "FAIL" }).expect("write");
        writeln!(f, "}}").expect("write");
        println!("        wrote {}", json_path.display());
    }

    println!();
    println!(
        "E12 verdict: {} (error ratio {ratio:.3}x <= {MAX_ERROR_RATIO}x, \
         {} retransmits, {} shard sheds under saturation, accounting conserved)",
        if ok { "RESILIENT" } else { "FLEET DEGRADED" },
        s.retransmits,
        saturated.shard_shed,
    );

    // Everything the single-threaded fleet simulation derives is exact;
    // only the error metrics are floats (still deterministic — default
    // tolerance absorbs compiler float-contraction drift only).
    let mut golden = Golden::new(if quick {
        "e12_fleet.quick"
    } else {
        "e12_fleet"
    });
    golden.push("clean_mae_w", clean.mae_w);
    golden.push("faulty_mae_w", faulty.mae_w);
    golden.push("error_ratio", ratio);
    golden.push("transport_divergence_w", divergence_w);
    golden.push_exact("frames_produced", s.produced as f64);
    golden.push_exact("transmissions", s.transmissions as f64);
    golden.push_exact("retransmits", s.retransmits as f64);
    golden.push_exact("dup_injected", s.dup_injected as f64);
    golden.push_exact("dropped_fault", s.dropped_fault as f64);
    golden.push_exact("dropped_partition", s.dropped_partition as f64);
    golden.push_exact("dropped_queue", s.dropped_queue as f64);
    golden.push_exact("dark_lost", s.dark_lost as f64);
    golden.push_exact("sender_shed", s.sender_shed as f64);
    golden.push_exact("shard_shed", s.shard_shed as f64);
    golden.push_exact("corrupt_frames", s.corrupt_frames as f64);
    golden.push_exact("applied", s.applied as f64);
    golden.push_exact("dup_discarded", s.dup_discarded as f64);
    golden.push_exact("abandoned", s.abandoned as f64);
    golden.push_exact("stale_transitions", s.stale_transitions as f64);
    golden.push_exact("recoveries", s.recoveries as f64);
    golden.push_exact("clean_lag_p50_ticks", clean.lag_p50 as f64);
    golden.push_exact("clean_lag_p99_ticks", clean.lag_p99 as f64);
    golden.push_exact("faulty_lag_p50_ticks", faulty.lag_p50 as f64);
    golden.push_exact("faulty_lag_p99_ticks", faulty.lag_p99 as f64);
    golden.push("staleness_mean", faulty.stale_mean);
    golden.push("staleness_max", faulty.stale_max);
    golden.push_exact("saturated_shard_shed", saturated.shard_shed as f64);
    golden.push_exact("journal_partition_events", partition_events as f64);
    golden.settle();

    if !ok {
        std::process::exit(1);
    }
}
