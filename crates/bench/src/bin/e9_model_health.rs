//! Experiment E9 — model-health observability: the streaming residual
//! monitor watching a long full-load run on the i3 testbed. Two arms,
//! same learned model, same workload:
//!
//! * **drift** — the stock i3 power model: sustained full load heats the
//!   package (τ = 30 s) and thermal leakage adds watts the cold-calibrated
//!   model never saw, so the live residual walks away from zero and the
//!   CUSUM/Page–Hinkley detectors must alarm within a few time constants
//!   and latch a recalibration request;
//! * **control** — the identical machine with thermal leakage zeroed:
//!   the model stays matched for the whole run and the detectors must
//!   stay silent (zero false alarms).
//!
//! Run: `cargo run --release -p bench-suite --bin e9_model_health [--quick]`
//! Data: `BENCH_model_health.json` (repo root, committed as evidence)

use bench_suite::{dump_trace, row, section, BenchArgs, Golden};
use powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi::model::learn::{learn_model, LearnConfig};
use powerapi::model::power_model::PerFrequencyPowerModel;
use powerapi::prelude::HealthConfig;
use powerapi::runtime::{PowerApi, RunOutcome};
use simcpu::machine::MachineConfig;
use simcpu::power::PowerModel;
use simcpu::presets;
use simcpu::units::Nanos;
use simcpu::workunit::WorkUnit;
use std::io::Write;

/// The i3 testbed with thermal leakage removed: what the calibration
/// sweep effectively sees (short, cold bursts). Mirrors
/// `presets::intel_i3_2120` except `thermal_leak_w_per_c(0)`.
fn cold_i3() -> MachineConfig {
    let mut machine = presets::intel_i3_2120();
    machine.power = PowerModel::builder()
        .platform_idle_w(26.0)
        .package_idle_w(5.5)
        .core_baseline_w_per_ghz_v2(2.7)
        .smt_second_thread_factor(0.10)
        .vref(1.05)
        .thermal_tau_s(30.0)
        .thermal_resistance_c_per_w(1.2)
        .thermal_leak_w_per_c(0.0)
        .build();
    machine
}

/// The monitor's tuning for this experiment. The detector slack sits
/// above the model's worst stationary bias at full co-run load (≈4 W of
/// fit error — this corner of the calibration grid fits worst) and far
/// below the ≈15–18 W thermal-leakage drift (0.30 W/°C amplified by the
/// leakage→power→temperature feedback), so the two arms separate
/// cleanly.
fn health_config() -> HealthConfig {
    HealthConfig {
        cusum_slack_w: 5.0,
        cusum_threshold_w: 15.0,
        ph_delta_w: 1.5,
        ph_lambda_w: 45.0,
        ..HealthConfig::default()
    }
}

/// Full-load steady run (both hyperthreads of both cores busy) with the
/// residual monitor enabled.
fn run_arm(
    machine: MachineConfig,
    model: PerFrequencyPowerModel,
    duration: Nanos,
) -> (RunOutcome, powerapi::telemetry::Telemetry) {
    let mut kernel = os_sim::kernel::Kernel::new(machine);
    let tasks: Vec<Box<dyn os_sim::task::TaskBehavior>> = (0..4)
        .map(|_| os_sim::task::SteadyTask::boxed(WorkUnit::cpu_intensive(1.0)))
        .collect();
    let pid = kernel.spawn("steady-load", tasks);
    let mut papi = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(model))
        .model_health(health_config())
        .events(perf_sim::events::PAPER_EVENTS.to_vec())
        .slots(4)
        .report_to_memory()
        .quantum(Nanos::from_millis(1))
        .clock_period(Nanos::from_secs(1))
        .build()
        .expect("pipeline");
    papi.monitor(pid).expect("monitor");
    papi.run_for(duration).expect("run");
    let telemetry = papi.telemetry().clone();
    (papi.finish().expect("finish"), telemetry)
}

fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    section("E9: model health — drift detection on a thermally-ramping run");

    println!("  [1/4] learning the energy profile on the cold testbed…");
    let learn_cfg = if quick {
        LearnConfig::quick()
    } else {
        LearnConfig::default()
    };
    let model = learn_model(cold_i3(), &learn_cfg).expect("learning");

    // τ = 30 s: the run spans several thermal time constants so the
    // leakage ramp fully develops.
    let duration = if quick {
        Nanos::from_secs(80)
    } else {
        Nanos::from_secs(150)
    };

    println!(
        "  [2/4] control arm: leak-free machine, {} s full load…",
        duration.as_secs_f64()
    );
    let (control, _) = run_arm(cold_i3(), model.clone(), duration);
    let ch = &control.model_health;

    println!(
        "  [3/4] drift arm: stock i3 (0.30 W/°C leakage), {} s full load…",
        duration.as_secs_f64()
    );
    let (drift, drift_telemetry) = run_arm(presets::intel_i3_2120(), model, duration);
    let dh = &drift.model_health;

    println!("  [4/4] scoring and writing evidence…");
    if let Some(path) = &args.dump_trace {
        dump_trace(&drift_telemetry, path);
    }
    section("residual monitor tallies");
    row("control residual ticks", ch.ticks);
    row("control drift alarms", ch.alarms);
    row("control out-of-band ticks", ch.out_of_band_ticks);
    row("control residual bias", format!("{:+.2} W", ch.bias_w));
    row("drift residual ticks", dh.ticks);
    row("drift alarms", dh.alarms);
    row("drift out-of-band ticks", dh.out_of_band_ticks);
    row("drift residual bias", format!("{:+.2} W", dh.bias_w));
    row("drift residual MAE", format!("{:.2} W", dh.mae_w));
    row("drift recalibration requests", dh.recalibrations);
    row("drift degraded estimates", drift.degraded_reports());

    section("E9 headline numbers");
    let first_alarm_s = dh.first_alarm_s.unwrap_or(f64::INFINITY);
    row(
        "detection latency",
        format!("{first_alarm_s:.0} s ({:.1} τ)", first_alarm_s / 30.0),
    );
    row(
        "false alarms on drift-free control",
        format!("{} in {} ticks", ch.alarms, ch.ticks),
    );

    let ok = dh.alarms >= 1
        && dh.recalibrations >= 1
        && first_alarm_s <= duration.as_secs_f64()
        && ch.alarms == 0
        && ch.recalibrations == 0;

    let json_path = std::path::Path::new("BENCH_model_health.json");
    let mut f = std::fs::File::create(json_path).expect("evidence file");
    writeln!(f, "{{").expect("write");
    writeln!(f, "  \"experiment\": \"e9_model_health\",").expect("write");
    writeln!(f, "  \"quick\": {quick},").expect("write");
    writeln!(f, "  \"duration_s\": {},", duration.as_secs_f64()).expect("write");
    writeln!(f, "  \"thermal_tau_s\": 30.0,").expect("write");
    writeln!(f, "  \"control_residual_ticks\": {},", ch.ticks).expect("write");
    writeln!(f, "  \"control_false_alarms\": {},", ch.alarms).expect("write");
    writeln!(f, "  \"control_bias_w\": {:.4},", ch.bias_w).expect("write");
    writeln!(f, "  \"drift_residual_ticks\": {},", dh.ticks).expect("write");
    writeln!(f, "  \"drift_alarms\": {},", dh.alarms).expect("write");
    writeln!(
        f,
        "  \"drift_out_of_band_ticks\": {},",
        dh.out_of_band_ticks
    )
    .expect("write");
    writeln!(f, "  \"drift_bias_w\": {:.4},", dh.bias_w).expect("write");
    writeln!(f, "  \"drift_mae_w\": {:.4},", dh.mae_w).expect("write");
    writeln!(f, "  \"detection_latency_s\": {first_alarm_s:.1},").expect("write");
    writeln!(f, "  \"recalibration_requests\": {},", dh.recalibrations).expect("write");
    writeln!(f, "  \"degraded_estimates\": {},", drift.degraded_reports()).expect("write");
    writeln!(f, "  \"verdict\": \"{}\"", if ok { "PASS" } else { "FAIL" }).expect("write");
    writeln!(f, "}}").expect("write");
    println!("        wrote {}", json_path.display());

    println!();
    println!(
        "E9 verdict: {} ({} drift alarm(s) >= 1, first at {first_alarm_s:.0} s <= {} s, \
         {} recalibration(s) >= 1, {} control false alarms == 0)",
        if ok { "DETECTED" } else { "MISSED OR NOISY" },
        dh.alarms,
        duration.as_secs_f64(),
        dh.recalibrations,
        ch.alarms,
    );

    // Quick and full schedules hold separate goldens (different learning
    // campaigns and durations). The residual *values* are deterministic,
    // but which meter sample pairs with which estimate depends on message
    // arrival order across real threads, so the detection tick and the
    // tick tallies can jitter by a sample — they carry explicit loose
    // tolerances, following E7's precedent for thread-timing-coupled
    // metrics. Alarm presence and the control arm's zero are hard claims
    // and stay exact.
    let mut golden = Golden::new(if quick {
        "e9_model_health.quick"
    } else {
        "e9_model_health"
    });
    golden.push_exact("control_false_alarms", ch.alarms as f64);
    golden.push_exact("control_recalibrations", ch.recalibrations as f64);
    golden.push_exact("drift_alarmed", f64::from(u8::from(dh.alarms >= 1)));
    golden.push_exact(
        "drift_recalibrated",
        f64::from(u8::from(dh.recalibrations >= 1)),
    );
    golden.push_tol("control_residual_ticks", ch.ticks as f64, 0.05);
    golden.push_tol("drift_residual_ticks", dh.ticks as f64, 0.05);
    golden.push_tol("detection_latency_s", first_alarm_s, 0.25);
    golden.push_tol("drift_out_of_band_ticks", dh.out_of_band_ticks as f64, 0.25);
    golden.push_tol("drift_bias_w", dh.bias_w, 0.10);
    golden.push_tol("drift_mae_w", dh.mae_w, 0.10);
    golden.settle();

    if !ok {
        std::process::exit(1);
    }
}
