//! Experiment E5 — implements and evaluates the paper's **§5 future-work
//! proposal**: "we plan to improve our learning algorithm by using the
//! Spearman rank correlation for finding automatically the most
//! correlated \[counters\] with the power consumption", motivated by its
//! conclusion that "only consider the generic counters is not …
//! necessarily the most reliable solution leading to high errors".
//!
//! The ablation: sample *every* generic counter the PMU exposes during
//! calibration, then build per-frequency models over (a) the paper's
//! fixed triple, (b) the Spearman top-k, (c) greedy cross-validated
//! forward selection — and score each on workloads the calibration never
//! saw (SPEC-CPU-like mixes and a SPECjbb excerpt).
//!
//! Run: `cargo run --release -p bench-suite --bin e5_selection [--quick] [--check|--bless]`
//! (`--quick` keeps the extended grid — selection needs its contrast —
//! but samples short windows at three frequencies and shortens the
//! held-out runs.)

use bench_suite::{row, section, BenchArgs, Evaluation, Golden};
use os_sim::task::SteadyTask;
use perf_sim::pfm::Pfm;
use powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi::model::learn::{fit_from_samples, measure_idle_power, LearnConfig};
use powerapi::model::sampling::{collect, SamplingConfig};
use powerapi::model::selection::{select_events, spearman_ranking, Strategy};
use simcpu::presets;
use simcpu::units::Nanos;
use workloads::speccpu;
use workloads::specjbb::{self, SpecJbbConfig};
use workloads::stress::extended_grid;

fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    section("E5: automatic counter selection (the paper's §5 proposal)");
    let machine = presets::intel_i3_2120();
    let pfm = Pfm::for_machine(&machine);

    // One wide calibration campaign: every available generic counter,
    // on a realistic 4-slot PMU (multiplexing included), over the
    // extended stress grid. Quick mode keeps that grid — the ranking
    // needs its contrast — and shrinks the windows instead.
    let base_sampling = if quick {
        SamplingConfig::quick()
    } else {
        SamplingConfig::default()
    };
    let cfg = LearnConfig {
        sampling: SamplingConfig {
            events: pfm.available_generic(),
            slots: 4,
            grid: extended_grid(),
            ..base_sampling
        },
        ..if quick {
            LearnConfig::quick()
        } else {
            LearnConfig::default()
        }
    };
    let jbb_secs = if quick { 120 } else { 300 };
    let spec_secs = if quick { 10 } else { 20 };
    println!(
        "  sampling {} generic counters on a 4-slot PMU ({} grid points)…",
        cfg.sampling.events.len(),
        cfg.sampling.grid.len()
    );
    let idle = measure_idle_power(&machine, &cfg).expect("idle measurement");
    let set = collect(&machine, &cfg.sampling).expect("wide campaign");

    section("Spearman ranking of every generic counter vs power");
    let mut ranking = spearman_ranking(&set).expect("ranking");
    ranking.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
    for (event, rho) in &ranking {
        println!("  {:<26} rho = {:+.3}", event.to_string(), rho);
    }

    // Strategies under test.
    let strategies = [
        Strategy::FixedGeneric,
        Strategy::SpearmanTopK(3),
        Strategy::SpearmanTopK(5),
        Strategy::GreedyCv {
            max_features: 5,
            folds: 4,
        },
    ];

    section("held-out evaluation (workloads never seen in calibration)");
    println!(
        "  {:<18} {:<42} {:>10} {:>10}",
        "strategy", "counters", "jbb_med%", "spec_avg%"
    );
    let mut results = Vec::new();
    for strategy in &strategies {
        let events = select_events(&set, strategy).expect("selection");
        let projected = set.project(&events).expect("projection");
        let model = fit_from_samples(idle, &projected).expect("fit");

        // Held-out 1: a SPECjbb excerpt.
        let jbb = SpecJbbConfig {
            duration: Nanos::from_secs(jbb_secs),
            ..SpecJbbConfig::default()
        };
        let jbb_report = Evaluation {
            events: events.clone(),
            ..Evaluation::new(machine.clone(), "jbb", specjbb::tasks(&jbb), jbb.duration)
        }
        .run(PerFrequencyFormula::new(model.clone()))
        .and_then(|o| bench_suite::score_outcome(&o))
        .expect("jbb evaluation");

        // Held-out 2: three SPEC-CPU-like apps, a short run each.
        let mut spec_errs = Vec::new();
        for name in ["perlbench", "mcf", "milc"] {
            let b = speccpu::by_name(name).expect("known benchmark");
            let report = Evaluation {
                events: events.clone(),
                clock: Nanos::from_millis(500),
                ..Evaluation::new(
                    machine.clone(),
                    b.name,
                    (0..machine.topology.physical_cores())
                        .map(|_| SteadyTask::boxed(b.work))
                        .collect(),
                    Nanos::from_secs(spec_secs),
                )
            }
            .run(PerFrequencyFormula::new(model.clone()))
            .and_then(|o| bench_suite::score_outcome(&o))
            .expect("spec evaluation");
            spec_errs.push(report.mape);
        }
        let spec_avg = spec_errs.iter().sum::<f64>() / spec_errs.len() as f64;

        let names: Vec<String> = events.iter().map(|e| e.to_string()).collect();
        println!(
            "  {:<18} {:<42} {:>10.2} {:>10.2}",
            strategy.label(),
            names.join(","),
            jbb_report.median_ape,
            spec_avg
        );
        results.push((strategy.label(), jbb_report.median_ape, spec_avg));
    }

    section("E5 summary");
    let fixed = &results[0];
    let best = results
        .iter()
        .min_by(|a, b| (a.1 + a.2).partial_cmp(&(b.1 + b.2)).expect("finite"))
        .expect("nonempty");
    row(
        "fixed generic counters (the paper's setup)",
        format!("jbb {:.1}% / spec {:.1}%", fixed.1, fixed.2),
    );
    row(
        "best automatic strategy",
        format!("{} (jbb {:.1}% / spec {:.1}%)", best.0, best.1, best.2),
    );
    let ok = best.1 + best.2 <= fixed.1 + fixed.2 + 1e-9;
    println!();
    println!(
        "E5 verdict: {} (automatic selection matches or beats the fixed triple, as §5 anticipates)",
        if ok { "SHAPE REPRODUCED" } else { "MISMATCH" }
    );
    let mut golden = Golden::new(if quick {
        "e5_selection.quick"
    } else {
        "e5_selection"
    });
    golden.push_exact("counters_ranked", ranking.len() as f64);
    golden.push("top_rho_abs", ranking[0].1.abs());
    for (label, jbb_med, spec_avg) in &results {
        let key: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        golden.push(format!("{key}_jbb_median_ape_pct"), *jbb_med);
        golden.push(format!("{key}_spec_avg_mape_pct"), *spec_avg);
    }
    golden.settle();

    if !ok {
        std::process::exit(1);
    }
}
