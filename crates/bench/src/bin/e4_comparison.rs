//! Experiment E4 — regenerates the paper's **§4 comparison discussion**:
//!
//! * Bertran et al.: decomposable counter model, six SPEC CPU2006
//!   applications, Intel Core 2 Duo ("a simple architecture without any
//!   features for improving performances") → **4.63 % average error**;
//! * Zhai et al. (HaPPy): hyperthread-aware model on SMT hardware →
//!   **7.5 % average error** (vs worse for HT-oblivious models);
//! * this paper: fixed generic counters on the SMT i3-2120 running
//!   SPECjbb → **15 % median error**.
//!
//! The shape to reproduce: *simple architecture beats complex*, and on
//! SMT hardware *HT-aware beats HT-oblivious*.
//!
//! Run: `cargo run --release -p bench-suite --bin e4_comparison [--quick] [--check|--bless]`
//! (`--quick` learns every model on the quick grid and shortens each
//! held-out run; the *ordering* claims are schedule-independent.)

use bench_suite::{row, section, BenchArgs, Evaluation, Golden};
use os_sim::task::SteadyTask;
use powerapi::formula::bertran::{bertran_events, BertranFormula};
use powerapi::formula::happy::HappyFormula;
use powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi::model::learn::{learn_happy, learn_model, LearnConfig};
use simcpu::presets;
use simcpu::units::Nanos;
use workloads::happy::scenarios;
use workloads::speccpu;
use workloads::specjbb::{self, SpecJbbConfig};

fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    let base_cfg = if quick {
        LearnConfig::quick()
    } else {
        LearnConfig::default()
    };

    // ------------------------------------------------------------------
    section("E4a: Bertran-style decomposable model / SPEC CPU2006 / Core 2 Duo");
    let core2 = presets::core2duo_e6600();
    let mut cfg = base_cfg.clone();
    cfg.sampling.events = bertran_events();
    cfg.sampling.slots = bertran_events().len(); // dedicated counters, as Bertran pinned them
    let model = learn_model(core2.clone(), &cfg).expect("bertran learning");
    println!(
        "  idle = {:.2} W over {} component counters",
        model.idle_w(),
        bertran_events().len()
    );

    println!("  {:<16} {:>10} {:>10}", "benchmark", "mape_%", "med_ape_%");
    let mut errors = Vec::new();
    for bench in speccpu::suite() {
        let duration = if quick {
            Nanos::from_secs(10).min(bench.duration)
        } else {
            bench.duration
        };
        let eval = Evaluation {
            clock: Nanos::from_millis(500),
            events: bertran_events(),
            slots: bertran_events().len(),
            ..Evaluation::new(
                core2.clone(),
                bench.name,
                (0..core2.topology.physical_cores())
                    .map(|_| SteadyTask::boxed(bench.work))
                    .collect(),
                duration,
            )
        };
        let report = eval
            .run(BertranFormula::new(model.clone()))
            .and_then(|o| bench_suite::score_outcome(&o))
            .expect("bertran evaluation");
        println!(
            "  {:<16} {:>10.2} {:>10.2}",
            bench.name, report.mape, report.median_ape
        );
        errors.push(report.mape);
    }
    let bertran_avg = errors.iter().sum::<f64>() / errors.len() as f64;
    row("paper (Bertran et al.): average error", "4.63 %");
    row("reproduction: average error", format!("{bertran_avg:.2} %"));

    // ------------------------------------------------------------------
    section("E4b: HaPPy HT-aware vs HT-oblivious / co-run scenarios / SMT+turbo Xeon");
    let xeon = presets::xeon_smt_turbo();
    let cfg = base_cfg.clone();
    let happy = learn_happy(xeon.clone(), &cfg).expect("happy learning");
    // The HT-oblivious comparator: same campaign, but solo-threads only
    // (it never learns what co-running does to power).
    let mut obl_cfg = base_cfg.clone();
    obl_cfg.sampling.both_smt_levels = false;
    let oblivious = learn_model(xeon.clone(), &obl_cfg).expect("oblivious learning");

    println!(
        "  {:<16} {:>6} {:>16} {:>16}",
        "scenario", "smt", "ht_aware_mape%", "oblivious_mape%"
    );
    let mut aware_errs = Vec::new();
    let mut obl_errs = Vec::new();
    let mut aware_smt = Vec::new();
    let mut obl_smt = Vec::new();
    for sc in scenarios(xeon.topology.physical_cores(), xeon.topology.logical_cpus()) {
        let mk_eval = || Evaluation {
            clock: Nanos::from_millis(500),
            ..Evaluation::new(
                xeon.clone(),
                sc.name,
                sc.workloads.iter().map(|w| SteadyTask::boxed(*w)).collect(),
                Nanos::from_secs(if quick { 10 } else { 20 }),
            )
        };
        let aware = mk_eval()
            .run(HappyFormula::new(happy.clone()))
            .and_then(|o| bench_suite::score_outcome(&o))
            .expect("ht-aware evaluation");
        let obl = mk_eval()
            .run(PerFrequencyFormula::new(oblivious.clone()))
            .and_then(|o| bench_suite::score_outcome(&o))
            .expect("oblivious evaluation");
        println!(
            "  {:<16} {:>6} {:>16.2} {:>16.2}",
            sc.name,
            if sc.smt_heavy { "yes" } else { "no" },
            aware.mape,
            obl.mape
        );
        aware_errs.push(aware.mape);
        obl_errs.push(obl.mape);
        if sc.smt_heavy {
            aware_smt.push(aware.mape);
            obl_smt.push(obl.mape);
        }
    }
    let happy_avg = aware_errs.iter().sum::<f64>() / aware_errs.len() as f64;
    let obl_avg = obl_errs.iter().sum::<f64>() / obl_errs.len() as f64;
    let happy_smt_avg = aware_smt.iter().sum::<f64>() / aware_smt.len() as f64;
    let obl_smt_avg = obl_smt.iter().sum::<f64>() / obl_smt.len() as f64;
    row("paper (Zhai et al. HaPPy): average error", "7.5 %");
    row(
        "reproduction: HT-aware average error",
        format!("{happy_avg:.2} %"),
    );
    row(
        "reproduction: HT-oblivious average error",
        format!("{obl_avg:.2} %"),
    );
    row(
        "SMT-heavy scenarios only: aware vs oblivious",
        format!("{happy_smt_avg:.2} % vs {obl_smt_avg:.2} %"),
    );

    // ------------------------------------------------------------------
    section("E4c: this paper's generic-counter model / SPECjbb (short) / i3-2120");
    let i3 = presets::intel_i3_2120();
    let generic = learn_model(i3.clone(), &base_cfg).expect("generic learning");
    let jbb = SpecJbbConfig {
        duration: Nanos::from_secs(if quick { 120 } else { 600 }),
        ..SpecJbbConfig::default()
    };
    let report = Evaluation::new(
        i3.clone(),
        "specjbb-short",
        specjbb::tasks(&jbb),
        jbb.duration,
    )
    .run(PerFrequencyFormula::new(generic))
    .and_then(|o| bench_suite::score_outcome(&o))
    .expect("generic evaluation");
    row("paper: median error on SPECjbb2013", "15 %");
    row(
        format!(
            "reproduction ({} s excerpt): median error",
            jbb.duration.as_secs_f64()
        )
        .as_str(),
        format!("{:.2} %", report.median_ape),
    );
    let generic_med = report.median_ape;

    // ------------------------------------------------------------------
    section("E4 summary (paper vs reproduction)");
    println!(
        "  {:<44} {:>8} {:>12}",
        "model / platform", "paper_%", "repro_%"
    );
    println!(
        "  {:<44} {:>8} {:>12.2}",
        "Bertran, SPEC CPU2006, Core 2 Duo (avg)", "4.63", bertran_avg
    );
    println!(
        "  {:<44} {:>8} {:>12.2}",
        "HaPPy HT-aware, co-runs, SMT Xeon (avg)", "7.5", happy_avg
    );
    println!(
        "  {:<44} {:>8} {:>12.2}",
        "Generic counters, SPECjbb, i3-2120 (median)", "15", generic_med
    );

    let ok = bertran_avg < happy_avg
        && happy_avg < generic_med
        && happy_smt_avg < obl_smt_avg
        && bertran_avg < 10.0;
    println!();
    println!(
        "E4 verdict: {} (simple-arch {bertran_avg:.1}% < HT-aware {happy_avg:.1}% < generic {generic_med:.1}%; aware beats oblivious on SMT: {happy_smt_avg:.1}% < {obl_smt_avg:.1}%)",
        if ok { "SHAPE REPRODUCED" } else { "MISMATCH" }
    );
    let mut golden = Golden::new(if quick {
        "e4_comparison.quick"
    } else {
        "e4_comparison"
    });
    golden.push("bertran_avg_mape_pct", bertran_avg);
    golden.push("happy_avg_mape_pct", happy_avg);
    golden.push("oblivious_avg_mape_pct", obl_avg);
    golden.push("happy_smt_avg_mape_pct", happy_smt_avg);
    golden.push("oblivious_smt_avg_mape_pct", obl_smt_avg);
    golden.push("generic_median_ape_pct", generic_med);
    golden.settle();

    if !ok {
        std::process::exit(1);
    }
}
