//! Experiment E10 — black-box flight recorder: the E7 chaos schedule
//! replayed with the event journal and the post-mortem dump armed, then
//! scored **from the dump alone**. The run itself is thrown away; the
//! question is whether `journal.jsonl` + `trace.json` + `metrics.prom`
//! let an operator reconstruct what the fault injector did — every one
//! of the eight injected fault kinds must appear in the dumped journal,
//! and the Chrome trace must parse as valid JSON naming all four
//! pipeline stages.
//!
//! Unlike E7 this needs no learned model (the dump does not care how
//! accurate the estimates are), so the pipeline runs the paper's stock
//! i3 model with a fixed cpu-load backup and the whole experiment is a
//! single run.
//!
//! Run: `cargo run --release -p bench-suite --bin e10_blackbox [--quick]`
//! Data: `BENCH_blackbox.json` (repo root, committed as evidence)

use bench_suite::chaos::{chaos_fault_config, quiet_chaos_panics, ChaosMonkey, CHAOS_SEED};
use bench_suite::{dump_trace, row, section, BenchArgs, Evaluation, Golden};
use powerapi::actor::RestartPolicy;
use powerapi::formula::cpuload::CpuLoadFormula;
use powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi::model::power_model::PerFrequencyPowerModel;
use powerapi::msg::Topic;
use powerapi::runtime::{PowerApi, RunOutcome};
use powerapi::telemetry::export::parse_json;
use powerapi::telemetry::{chrome_trace_from, parse_jsonl, EventKind, JournalEvent, Telemetry};
use simcpu::fault::{FaultKind, FaultPlan};
use simcpu::presets;
use simcpu::units::Nanos;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use workloads::specjbb::{self, SpecJbbConfig};

/// Backup formula constants (i3 ballpark; E10 checks observability, not
/// accuracy).
const BACKUP_IDLE_W: f64 = 30.0;
const BACKUP_SLOPE_W: f64 = 25.0;

/// The four stages the ISSUE requires the exported trace to name.
const PIPELINE_STAGES: [&str; 4] = ["sensor", "formula", "aggregator", "reporter"];

fn run_flight_recorded(
    jbb: &SpecJbbConfig,
    plan: FaultPlan,
    dump_dir: &std::path::Path,
) -> (RunOutcome, Telemetry) {
    let eval = Evaluation::new(
        presets::intel_i3_2120(),
        "specjbb2013",
        specjbb::tasks(jbb),
        jbb.duration,
    );
    let mut kernel = os_sim::kernel::Kernel::new(eval.machine);
    let pid = kernel.spawn(eval.name, eval.tasks);
    let monkey_plan = plan.clone();
    let fired = Arc::new(Mutex::new(Vec::new()));
    let mut papi = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(
            PerFrequencyPowerModel::paper_i3_example(),
        ))
        .degrade_to(
            CpuLoadFormula::new(BACKUP_IDLE_W, BACKUP_SLOPE_W),
            Nanos::from_millis(2500),
        )
        .fault_plan(plan)
        .supervision(RestartPolicy::Restart {
            max: 16,
            backoff: Duration::ZERO,
        })
        .with_supervised_actor(
            "chaos-monkey",
            move || {
                Box::new(ChaosMonkey {
                    plan: monkey_plan.clone(),
                    fired: fired.clone(),
                })
            },
            vec![Topic::Tick],
        )
        .events(eval.events)
        .slots(eval.slots)
        .report_to_memory()
        .quantum(eval.quantum)
        .clock_period(eval.clock)
        // The flight recorder proper: always dump, window = whole run.
        .post_mortem_to(dump_dir)
        .post_mortem_always(true)
        .post_mortem_window(jbb.duration)
        .build()
        .expect("pipeline");
    papi.monitor(pid).expect("monitor");
    papi.run_for(jbb.duration).expect("run");
    let telemetry = papi.telemetry().clone();
    (papi.finish().expect("finish"), telemetry)
}

/// How often `kind` shows up in the dumped journal. Host-fault kinds
/// arrive as `fault-injected` events whose subject is the kind's name;
/// the injected actor fault arrives as the supervisor's `actor-panic`
/// events.
fn captured_count(journal: &[JournalEvent], kind: FaultKind) -> usize {
    let name = format!("{kind:?}");
    journal
        .iter()
        .filter(|e| match kind {
            FaultKind::ActorPanic => e.kind == EventKind::ActorPanic,
            _ => e.kind == EventKind::FaultInjected && e.subject == name,
        })
        .count()
}

fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    quiet_chaos_panics();
    section("E10: black-box — reconstructing the chaos run from its dump");

    let jbb = SpecJbbConfig {
        duration: if quick {
            Nanos::from_secs(200)
        } else {
            Nanos::from_secs(2500)
        },
        ..SpecJbbConfig::default()
    };
    let plan = FaultPlan::generate(CHAOS_SEED, jbb.duration, &chaos_fault_config(quick));
    let injected: Vec<FaultKind> = plan.kinds();

    println!(
        "  [1/3] chaos run with the flight recorder armed ({} s, {} windows, seed {CHAOS_SEED:#x})…",
        jbb.duration.as_secs_f64(),
        plan.windows().len()
    );
    let dump_dir = std::path::Path::new("target/e10_blackbox");
    let (outcome, telemetry) = run_flight_recorded(&jbb, plan.clone(), dump_dir);
    if let Some(path) = &args.dump_trace {
        dump_trace(&telemetry, path);
    }
    let report = outcome
        .flight_recorder
        .as_ref()
        .expect("post_mortem_always guarantees a dump");

    println!("  [2/3] reading the dump back ({} )…", report.dir.display());
    let journal_text =
        std::fs::read_to_string(report.dir.join("journal.jsonl")).expect("read journal.jsonl");
    let journal = parse_jsonl(&journal_text).expect("journal.jsonl parses");
    let trace_text =
        std::fs::read_to_string(report.dir.join("trace.json")).expect("read trace.json");
    let trace = parse_json(&trace_text).expect("trace.json is valid JSON");

    // Which injected kinds can the dump alone account for?
    let counts: Vec<(FaultKind, usize)> = injected
        .iter()
        .map(|&k| (k, captured_count(&journal, k)))
        .collect();
    let captured: Vec<&(FaultKind, usize)> = counts.iter().filter(|(_, n)| *n > 0).collect();

    // Which pipeline stages does the Chrome trace name?
    let events = trace
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let tracks: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    let stages_named = PIPELINE_STAGES
        .iter()
        .filter(|s| tracks.contains(*s))
        .count();

    // Re-export cost, measured on the live hub (same span + journal set
    // the dump saw).
    let export_started = std::time::Instant::now();
    let export = chrome_trace_from(&telemetry);
    let export_ms = export_started.elapsed().as_secs_f64() * 1e3;

    println!("  [3/3] scoring and writing evidence…");
    section("dump contents vs fault injection");
    for (kind, n) in &counts {
        row(&format!("{kind:?}"), format!("{n} journal event(s)"));
    }
    row("kinds injected", injected.len());
    row("kinds captured in dump", captured.len());
    row("journal events in dump", report.events);
    row("trace spans in dump", report.spans);
    row("dump size", format!("{} bytes", report.bytes));
    row("dump reason", &report.reason);

    section("E10 headline numbers");
    row(
        "fault coverage",
        format!("{}/{}", captured.len(), injected.len()),
    );
    row(
        "pipeline stages named in trace",
        format!("{stages_named}/{}", PIPELINE_STAGES.len()),
    );
    row("chrome export", format!("{export_ms:.2} ms"));
    row("chrome export size", format!("{} bytes", export.len()));

    let panics_journaled = journal
        .iter()
        .filter(|e| e.kind == EventKind::ActorPanic)
        .count();
    let restarts_journaled = journal
        .iter()
        .filter(|e| e.kind == EventKind::ActorRestart)
        .count();
    let faults_journaled = journal
        .iter()
        .filter(|e| e.kind == EventKind::FaultInjected)
        .count();

    let ok = captured.len() == injected.len()
        && stages_named == PIPELINE_STAGES.len()
        && report.events > 0
        && report.spans > 0;

    let json_path = std::path::Path::new("BENCH_blackbox.json");
    let mut f = std::fs::File::create(json_path).expect("evidence file");
    writeln!(f, "{{").expect("write");
    writeln!(f, "  \"experiment\": \"e10_blackbox\",").expect("write");
    writeln!(f, "  \"quick\": {quick},").expect("write");
    writeln!(f, "  \"chaos_seed\": {CHAOS_SEED},").expect("write");
    writeln!(f, "  \"duration_s\": {},", jbb.duration.as_secs_f64()).expect("write");
    writeln!(f, "  \"fault_windows\": {},", plan.windows().len()).expect("write");
    writeln!(
        f,
        "  \"kinds_injected\": [{}],",
        injected
            .iter()
            .map(|k| format!("\"{k:?}\""))
            .collect::<Vec<_>>()
            .join(", ")
    )
    .expect("write");
    writeln!(
        f,
        "  \"kinds_captured\": [{}],",
        captured
            .iter()
            .map(|(k, _)| format!("\"{k:?}\""))
            .collect::<Vec<_>>()
            .join(", ")
    )
    .expect("write");
    writeln!(f, "  \"journal_events_in_dump\": {},", report.events).expect("write");
    writeln!(f, "  \"fault_events_journaled\": {faults_journaled},").expect("write");
    writeln!(f, "  \"actor_panics_journaled\": {panics_journaled},").expect("write");
    writeln!(f, "  \"actor_restarts_journaled\": {restarts_journaled},").expect("write");
    writeln!(f, "  \"trace_spans_in_dump\": {},", report.spans).expect("write");
    writeln!(f, "  \"trace_stages_named\": {stages_named},").expect("write");
    writeln!(f, "  \"dump_bytes\": {},", report.bytes).expect("write");
    writeln!(f, "  \"dump_reason\": \"{}\",", report.reason).expect("write");
    writeln!(f, "  \"chrome_export_ms\": {export_ms:.3},").expect("write");
    writeln!(f, "  \"chrome_export_bytes\": {},", export.len()).expect("write");
    writeln!(f, "  \"verdict\": \"{}\"", if ok { "PASS" } else { "FAIL" }).expect("write");
    writeln!(f, "}}").expect("write");
    println!("        wrote {}", json_path.display());

    println!();
    println!(
        "E10 verdict: {} ({}/{} fault kinds reconstructed from the dump, \
         {stages_named}/4 stages named in the trace)",
        if ok {
            "RECONSTRUCTED"
        } else {
            "BLACK BOX LOST DATA"
        },
        captured.len(),
        injected.len(),
    );

    // The injected-fault tallies replay exactly from the seeded plan
    // (E7's precedent); the *total* event count also includes the
    // quality-degrade transitions, which depend on where actor restarts
    // land relative to in-flight ticks across real threads, so it
    // carries a loose tolerance.
    let mut golden = Golden::new(if quick {
        "e10_blackbox.quick"
    } else {
        "e10_blackbox"
    });
    golden.push_exact("fault_windows", plan.windows().len() as f64);
    golden.push_exact("kinds_injected", injected.len() as f64);
    golden.push_exact("kinds_captured", captured.len() as f64);
    golden.push_exact("fault_events_journaled", faults_journaled as f64);
    golden.push_exact("actor_panics_journaled", panics_journaled as f64);
    golden.push_exact("actor_restarts_journaled", restarts_journaled as f64);
    golden.push_exact("trace_stages_named", stages_named as f64);
    golden.push_tol("journal_events_in_dump", report.events as f64, 0.25);
    golden.settle();

    if !ok {
        std::process::exit(1);
    }
}
