//! Experiment E7 — chaos replay: the E3 SPECjbb2013 run repeated under an
//! active fault schedule. A deterministic [`FaultPlan`] disconnects and
//! corrupts the PowerSpy, stalls and resets the PMU, revokes counter
//! slots, and panics a supervised actor mid-run; the pipeline must keep
//! estimating (degrading per-process to the cpu-load formula while the
//! HPC stream is stalled) and finish with a median error within 2× of the
//! fault-free baseline.
//!
//! Run: `cargo run --release -p bench-suite --bin e7_chaos [--quick]`
//! Data: `BENCH_chaos.json` (repo root, committed as evidence)

use bench_suite::chaos::{chaos_fault_config, quiet_chaos_panics, ChaosMonkey, CHAOS_SEED};
use bench_suite::{dump_trace, row, score_outcome, section, BenchArgs, Evaluation, Golden};
use powerapi::actor::RestartPolicy;
use powerapi::formula::cpuload::CpuLoadFormula;
use powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi::model::learn::{calibrate_cpuload, learn_model, LearnConfig};
use powerapi::msg::Topic;
use powerapi::runtime::{PowerApi, RunOutcome};
use powerapi::telemetry::Telemetry;
use simcpu::fault::FaultPlan;
use simcpu::presets;
use simcpu::units::Nanos;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use workloads::specjbb::{self, SpecJbbConfig};

struct ChaosRun {
    outcome: RunOutcome,
    meter_stats: powermeter::powerspy::MeterFaultStats,
    counter_stats: perf_sim::session::CounterFaultStats,
    telemetry: Telemetry,
}

fn run_pipeline(
    model: PerFrequencyPowerModel,
    backup: CpuLoadFormula,
    jbb: &SpecJbbConfig,
    plan: FaultPlan,
) -> ChaosRun {
    let eval = Evaluation::new(
        presets::intel_i3_2120(),
        "specjbb2013",
        specjbb::tasks(jbb),
        jbb.duration,
    );
    let mut kernel = os_sim::kernel::Kernel::new(eval.machine);
    let pid = kernel.spawn(eval.name, eval.tasks);
    let monkey_plan = plan.clone();
    let fired = Arc::new(Mutex::new(Vec::new()));
    let mut papi = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(model))
        .degrade_to(backup, Nanos::from_millis(2500))
        .fault_plan(plan)
        .supervision(RestartPolicy::Restart {
            max: 16,
            backoff: Duration::ZERO,
        })
        .with_supervised_actor(
            "chaos-monkey",
            move || {
                Box::new(ChaosMonkey {
                    plan: monkey_plan.clone(),
                    fired: fired.clone(),
                })
            },
            vec![Topic::Tick],
        )
        .events(eval.events)
        .slots(eval.slots)
        .report_to_memory()
        .quantum(eval.quantum)
        .clock_period(eval.clock)
        .build()
        .expect("pipeline");
    papi.monitor(pid).expect("monitor");
    papi.run_for(jbb.duration).expect("run");
    let meter_stats = papi.meter_fault_stats();
    let counter_stats = papi.counter_fault_stats();
    let telemetry = papi.telemetry().clone();
    ChaosRun {
        outcome: papi.finish().expect("finish"),
        meter_stats,
        counter_stats,
        telemetry,
    }
}

use powerapi::model::power_model::PerFrequencyPowerModel;

fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    quiet_chaos_panics();
    section("E7: chaos replay — SPECjbb2013 under an active fault schedule");

    println!("  [1/4] learning the energy profile…");
    let learn_cfg = if quick {
        LearnConfig::quick()
    } else {
        LearnConfig::default()
    };
    let machine = presets::intel_i3_2120();
    let model = learn_model(machine.clone(), &learn_cfg).expect("learning");
    let backup = calibrate_cpuload(machine, &learn_cfg).expect("cpu-load calibration");

    let jbb = SpecJbbConfig {
        duration: if quick {
            Nanos::from_secs(200)
        } else {
            Nanos::from_secs(2500)
        },
        ..SpecJbbConfig::default()
    };

    println!(
        "  [2/4] fault-free baseline run ({} s)…",
        jbb.duration.as_secs_f64()
    );
    let baseline = run_pipeline(model.clone(), backup, &jbb, FaultPlan::none());
    let base_report = score_outcome(&baseline.outcome).expect("baseline score");

    println!("  [3/4] chaos run under the generated fault plan…");
    let fault_cfg = chaos_fault_config(quick);
    let plan = FaultPlan::generate(CHAOS_SEED, jbb.duration, &fault_cfg);
    println!(
        "        {} windows over {} kinds, seed {CHAOS_SEED:#x}",
        plan.windows().len(),
        plan.kinds().len()
    );
    let chaos = run_pipeline(model, backup, &jbb, plan.clone());
    let chaos_report = score_outcome(&chaos.outcome).expect("chaos score");

    println!("  [4/4] scoring and writing evidence…");
    if let Some(path) = &args.dump_trace {
        dump_trace(&chaos.telemetry, path);
    }
    let m = chaos.meter_stats;
    let c = chaos.counter_stats;
    let health = &chaos.outcome.health;
    let mut kinds_fired: Vec<&str> = Vec::new();
    if m.dropped > 0 {
        kinds_fired.push("SampleDropout");
    }
    if m.corrupted > 0 {
        kinds_fired.push("FrameCorruption");
    }
    if m.disconnected > 0 {
        kinds_fired.push("Disconnect");
    }
    if m.noise_bursts > 0 {
        kinds_fired.push("NoiseBurst");
    }
    if c.stalled_ticks > 0 {
        kinds_fired.push("CounterStall");
    }
    if c.spurious_resets > 0 {
        kinds_fired.push("SpuriousReset");
    }
    if c.revoked_slot_ticks > 0 {
        kinds_fired.push("SlotRevocation");
    }
    if health.restarts > 0 {
        kinds_fired.push("ActorPanic");
    }

    section("fault tally");
    row("meter samples lost", m.dropped + m.disconnected);
    row("meter frames corrupted", m.corrupted);
    row("noisy samples emitted", m.noise_bursts);
    row("PMU stalled ticks", c.stalled_ticks);
    row("PMU spurious resets", c.spurious_resets);
    row("slot-revoked ticks", c.revoked_slot_ticks);
    row("supervised restarts", health.restarts);
    row("actor panics (caught)", health.panics);
    row("actors dead at shutdown", health.panicked.len());
    row("degraded estimates", chaos.outcome.degraded_reports());

    section("E7 headline numbers");
    row(
        "baseline median error",
        format!("{:.2} %", base_report.median_ape),
    );
    row(
        "chaos median error",
        format!("{:.2} %", chaos_report.median_ape),
    );
    let ratio = chaos_report.median_ape / base_report.median_ape.max(1e-9);
    row("chaos / baseline ratio", format!("{ratio:.2}×"));
    row("distinct fault kinds fired", kinds_fired.len());

    let ok = kinds_fired.len() >= 3
        && health.restarts >= 1
        && health.panicked.is_empty()
        && !health.escalated
        && ratio <= 2.0;

    let json_path = std::path::Path::new("BENCH_chaos.json");
    let mut f = std::fs::File::create(json_path).expect("evidence file");
    writeln!(f, "{{").expect("write");
    writeln!(f, "  \"experiment\": \"e7_chaos\",").expect("write");
    writeln!(f, "  \"quick\": {quick},").expect("write");
    writeln!(f, "  \"chaos_seed\": {CHAOS_SEED},").expect("write");
    writeln!(f, "  \"duration_s\": {},", jbb.duration.as_secs_f64()).expect("write");
    writeln!(f, "  \"fault_windows\": {},", plan.windows().len()).expect("write");
    writeln!(
        f,
        "  \"fault_kinds_fired\": [{}],",
        kinds_fired
            .iter()
            .map(|k| format!("\"{k}\""))
            .collect::<Vec<_>>()
            .join(", ")
    )
    .expect("write");
    writeln!(
        f,
        "  \"meter_samples_lost\": {},",
        m.dropped + m.disconnected
    )
    .expect("write");
    writeln!(f, "  \"meter_frames_corrupted\": {},", m.corrupted).expect("write");
    writeln!(f, "  \"pmu_stalled_ticks\": {},", c.stalled_ticks).expect("write");
    writeln!(f, "  \"pmu_spurious_resets\": {},", c.spurious_resets).expect("write");
    writeln!(f, "  \"slot_revoked_ticks\": {},", c.revoked_slot_ticks).expect("write");
    writeln!(f, "  \"supervised_restarts\": {},", health.restarts).expect("write");
    writeln!(f, "  \"actor_panics_caught\": {},", health.panics).expect("write");
    writeln!(f, "  \"actors_dead\": {},", health.panicked.len()).expect("write");
    writeln!(
        f,
        "  \"degraded_estimates\": {},",
        chaos.outcome.degraded_reports()
    )
    .expect("write");
    writeln!(
        f,
        "  \"baseline_median_ape_pct\": {:.4},",
        base_report.median_ape
    )
    .expect("write");
    writeln!(
        f,
        "  \"chaos_median_ape_pct\": {:.4},",
        chaos_report.median_ape
    )
    .expect("write");
    writeln!(f, "  \"error_ratio\": {ratio:.4},").expect("write");
    writeln!(f, "  \"verdict\": \"{}\"", if ok { "PASS" } else { "FAIL" }).expect("write");
    writeln!(f, "}}").expect("write");
    println!("        wrote {}", json_path.display());

    println!();
    println!(
        "E7 verdict: {} ({} fault kinds fired >= 3, {} restart(s) >= 1, \
         {} dead actors == 0, error ratio {ratio:.2}x <= 2.0)",
        if ok {
            "RESILIENT"
        } else {
            "DEGRADED BEYOND SPEC"
        },
        kinds_fired.len(),
        health.restarts,
        health.panicked.len(),
    );
    // Quick and full schedules hold separate goldens (different fault
    // windows, different durations). Counts derived from the seeded fault
    // plan reproduce exactly; the error metrics and the degraded-report
    // count depend on where actor restarts land relative to in-flight
    // ticks (real threads, not simulated ones), so they carry explicit
    // loose tolerances instead of the default 1e-6.
    let mut golden = Golden::new(if quick { "e7_chaos.quick" } else { "e7_chaos" });
    golden.push_exact("fault_windows", plan.windows().len() as f64);
    golden.push_exact("fault_kinds_fired", kinds_fired.len() as f64);
    golden.push_exact("meter_samples_lost", (m.dropped + m.disconnected) as f64);
    golden.push_exact("meter_frames_corrupted", m.corrupted as f64);
    golden.push_exact("pmu_stalled_ticks", c.stalled_ticks as f64);
    golden.push_exact("pmu_spurious_resets", c.spurious_resets as f64);
    golden.push_exact("slot_revoked_ticks", c.revoked_slot_ticks as f64);
    golden.push_exact("supervised_restarts", health.restarts as f64);
    golden.push_exact("actor_panics_caught", health.panics as f64);
    golden.push_tol(
        "degraded_estimates",
        chaos.outcome.degraded_reports() as f64,
        1.0,
    );
    golden.push_tol("baseline_median_ape_pct", base_report.median_ape, 0.05);
    golden.push_tol("chaos_median_ape_pct", chaos_report.median_ape, 0.05);
    golden.settle();

    if !ok {
        std::process::exit(1);
    }
}
