//! Experiment E8 — the middleware watches itself. Measures what the
//! telemetry layer (metrics registry, span tracing, self-overhead
//! profiling, JSON-lines export) costs the pipeline, and demonstrates the
//! self-attribution path: the middleware's own busy time surfaces as a
//! synthetic `powerapi` process in the regular power reports.
//!
//! Protocol: learn a model once, then replay the same 600 s SPECjbb
//! excerpt with telemetry fully off and fully on (tracing + per-actor
//! metrics + self-profiling + the event journal + JSON-lines export to
//! a sink), alternating arms, three runs each. The best-of-three wall
//! times are compared — min-of-N is the standard way to strip scheduler
//! noise from a throughput measurement. The acceptance bar is the
//! ISSUE's: telemetry may add **< 3 %** wall time. A final section
//! prices the flight-recorder exports themselves (Chrome trace + JSONL
//! journal dump), which run at shutdown rather than on the hot path.
//!
//! A second pair of arms prices the **fleet tracing plane** the same
//! way: the E12 faulty chaos arm replayed against a disabled vs an
//! enabled telemetry hub. The enabled hub turns on everything the
//! observability plane adds per frame — journey-hop capture, trace
//! propagation journaling, the latency/retransmit histograms and the
//! SLO tracker's journal feed. Fault decisions hash only
//! seed/host/seq/attempt, so both arms replay bit-identical fleets and
//! the wall-time delta is pure tracing cost — held to the same < 3 %.
//!
//! Run: `cargo run --release -p bench-suite --bin e8_overhead`
//! Data: `BENCH_overhead.json` (repo root, committed as evidence)
//!
//! Flags (shared [`BenchArgs`] contract): `--quick` shrinks the replay
//! and fleet arms for CI smoke; `--check` gates against the committed
//! evidence without rewriting it; `--dump-trace <path>` exports the
//! instrumented run's Chrome trace; `--bless` rewrites goldens.

use bench_suite::fleetsim::{self, fleet_faults, json_number, FleetSpec};
use bench_suite::{dump_trace, row, section, BenchArgs, Golden};
use os_sim::kernel::Kernel;
use powerapi::fleet::{ShardConfig, SloConfig};
use powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi::model::learn::{learn_model, LearnConfig};
use powerapi::model::power_model::PerFrequencyPowerModel;
use powerapi::runtime::{PowerApi, RunOutcome};
use powerapi::telemetry::{chrome_trace_from, dump_jsonl, Telemetry, SELF_PID};
use simcpu::presets;
use simcpu::units::Nanos;
use std::io::Write;
use std::time::Instant;
use workloads::specjbb::{self, SpecJbbConfig};

/// Watts attributed per fully-busy middleware core in the self profile
/// (only the *shape* matters here; E8 checks attribution, not accuracy).
const SELF_WATTS_PER_CORE: f64 = 10.0;

/// The acceptance budget for added wall time, full schedule. Quick runs
/// compare sub-second walls where scheduler noise alone is a few percent,
/// so the smoke schedule carries a looser bar — the 3 % claim is only
/// ever made (and committed as evidence) from the full run.
const BUDGET_PCT: f64 = 3.0;
const QUICK_BUDGET_PCT: f64 = 15.0;

/// Shapes per schedule: (jbb seconds, runs per arm, fleet hosts, fleet
/// ticks). The fleet-tracing arm sizes keep `Fleet::run` long enough for
/// a stable percentage on the full schedule; seven interleaved runs per
/// arm let the best-of minimum shake off scheduler noise on busy hosts.
const FULL_SHAPE: (u64, usize, usize, u64) = (600, 7, 16, 60);
const QUICK_SHAPE: (u64, usize, usize, u64) = (120, 2, 8, 40);
const FLEET_SHARDS: usize = 2;

/// A sink that counts bytes but keeps nothing — the export cost is paid,
/// the memory is not.
struct CountingSink(u64);

impl Write for CountingSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0 += buf.len() as u64;
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One replay of the SPECjbb excerpt; returns wall seconds + outcome.
fn replay(
    model: PerFrequencyPowerModel,
    jbb: &SpecJbbConfig,
    telemetry_on: bool,
) -> (f64, RunOutcome, Telemetry) {
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let pid = kernel.spawn("specjbb", specjbb::tasks(jbb));
    let mut builder = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(model))
        .report_to_memory()
        .telemetry(telemetry_on);
    if telemetry_on {
        builder = builder
            .profile_self(SELF_WATTS_PER_CORE)
            .report_telemetry_to(CountingSink(0));
    }
    let started = Instant::now();
    let mut papi = builder.build().expect("build");
    papi.monitor(pid).expect("monitor");
    papi.run_for(jbb.duration).expect("run");
    let telemetry = papi.telemetry().clone();
    let outcome = papi.finish().expect("finish");
    (started.elapsed().as_secs_f64(), outcome, telemetry)
}

/// One replay of the fleet-tracing arm; returns `Fleet::run` wall
/// seconds plus the journey hops and journal events the enabled arm
/// recorded (both 0 when the hub is disabled — that's the point).
fn fleet_replay(
    model: PerFrequencyPowerModel,
    hosts: usize,
    ticks: u64,
    tracing_on: bool,
) -> (f64, usize, u64) {
    let spec = FleetSpec {
        hosts,
        ticks,
        shards: FLEET_SHARDS,
        shard: ShardConfig::default(),
        fault: fleet_faults(hosts, ticks),
        slo: SloConfig::default(),
    };
    let hub = if tracing_on {
        Telemetry::new()
    } else {
        Telemetry::disabled()
    };
    let formula = PerFrequencyFormula::new(model);
    let run = fleetsim::run_fleet_with(spec, &formula, fleetsim::make_source, hub);
    (
        run.wall_s,
        run.fleet.journeys().len(),
        run.telemetry.journal().emitted(),
    )
}

fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    let (jbb_secs, runs_per_arm, fleet_hosts, fleet_ticks) =
        if quick { QUICK_SHAPE } else { FULL_SHAPE };
    let budget_pct = if quick { QUICK_BUDGET_PCT } else { BUDGET_PCT };
    section(if quick {
        "E8: telemetry self-overhead on the E3 SPECjbb replay (quick)"
    } else {
        "E8: telemetry self-overhead on the E3 SPECjbb replay"
    });

    println!("  [1/3] learning the energy profile once…");
    let learn_cfg = if quick {
        LearnConfig::quick()
    } else {
        LearnConfig::default()
    };
    let model = learn_model(presets::intel_i3_2120(), &learn_cfg).expect("learning");
    let jbb = SpecJbbConfig {
        duration: Nanos::from_secs(jbb_secs),
        ..SpecJbbConfig::default()
    };

    println!(
        "  [2/3] replaying {} s of SPECjbb, {} runs per arm, arms interleaved…",
        jbb.duration.as_secs_f64(),
        runs_per_arm
    );
    let mut off_s = Vec::new();
    let mut on_s = Vec::new();
    let mut last_on: Option<(RunOutcome, Telemetry)> = None;
    for i in 0..runs_per_arm {
        let (t_off, _, _) = replay(model.clone(), &jbb, false);
        let (t_on, outcome, hub) = replay(model.clone(), &jbb, true);
        println!("        run {}: off {t_off:.3} s, on {t_on:.3} s", i + 1);
        off_s.push(t_off);
        on_s.push(t_on);
        last_on = Some((outcome, hub));
    }
    let (outcome, hub) = last_on.expect("at least one instrumented run");
    let best_off = off_s.iter().cloned().fold(f64::INFINITY, f64::min);
    let best_on = on_s.iter().cloned().fold(f64::INFINITY, f64::min);
    let overhead_pct = (best_on - best_off) / best_off * 100.0;

    println!("  [3/3] scoring…");
    section("wall-time overhead (best of each arm)");
    row("telemetry off", format!("{best_off:.3} s"));
    row(
        "telemetry on (trace+metrics+profile+export)",
        format!("{best_on:.3} s"),
    );
    row("added wall time", format!("{overhead_pct:+.2} %"));

    // What the instrumented run saw about itself.
    let t = &outcome.telemetry;
    section("per-stage handle latency (instrumented run)");
    println!(
        "  {:<12} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "p50_ns", "p95_ns", "mean_ns"
    );
    for stage in &t.stages {
        println!(
            "  {:<12} {:>10} {:>10} {:>10} {:>10}",
            stage.stage,
            stage.latency.count,
            stage.latency.p50_ns,
            stage.latency.p95_ns,
            stage.latency.mean_ns
        );
    }
    row("ticks traced", t.ticks_traced);
    row("messages handled", t.messages_handled);
    row(
        "middleware busy (self-profiled)",
        format!("{:.3} ms", t.overhead.middleware_busy_ns as f64 / 1e6),
    );
    row(
        "host-model busy (snapshots + stepping)",
        format!("{:.3} ms", t.overhead.host_busy_ns as f64 / 1e6),
    );

    // Self-attribution: the middleware shows up as a process.
    let self_trace = outcome.self_estimates();
    let self_mean_w = if self_trace.is_empty() {
        0.0
    } else {
        self_trace.iter().map(|(_, w)| w.0).sum::<f64>() / self_trace.len() as f64
    };
    section("self-attribution (synthetic `powerapi` process)");
    row("self power reports", self_trace.len());
    row("mean self power", format!("{self_mean_w:.4} W"));

    if let Some(path) = &args.dump_trace {
        dump_trace(&hub, path);
    }

    // Flight-recorder arms: what the shutdown-time exports cost, priced
    // on the instrumented run's full span + journal set. These never run
    // on the hot path, so they report alongside the <3 % budget instead
    // of counting against it.
    let chrome_started = Instant::now();
    let chrome = chrome_trace_from(&hub);
    let chrome_ms = chrome_started.elapsed().as_secs_f64() * 1e3;
    let events = hub.journal().events();
    let jsonl_started = Instant::now();
    let jsonl = dump_jsonl(&events);
    let jsonl_ms = jsonl_started.elapsed().as_secs_f64() * 1e3;
    section("flight-recorder exports (shutdown path)");
    row("journal events recorded", hub.journal().emitted());
    row("journal events dropped", hub.journal().dropped());
    row(
        "chrome trace export",
        format!("{chrome_ms:.2} ms, {} bytes", chrome.len()),
    );
    row(
        "journal JSONL export",
        format!("{jsonl_ms:.2} ms, {} bytes", jsonl.len()),
    );

    // Fleet-tracing arms: the same disabled-vs-enabled protocol over the
    // E12 faulty chaos arm, pricing what the observability plane adds to
    // `Fleet::run` (journeys + histograms + journal + SLO feed).
    println!();
    println!(
        "  fleet-tracing arms: {fleet_hosts} hosts × {fleet_ticks} ticks of the E12 faulty \
         chaos arm, {runs_per_arm} runs per arm, arms interleaved…"
    );
    let mut fleet_off_s = Vec::new();
    let mut fleet_on_s = Vec::new();
    let mut fleet_hops = 0usize;
    let mut fleet_events = 0u64;
    for i in 0..runs_per_arm {
        let (t_off, off_hops, off_events) =
            fleet_replay(model.clone(), fleet_hosts, fleet_ticks, false);
        let (t_on, on_hops, on_events) =
            fleet_replay(model.clone(), fleet_hosts, fleet_ticks, true);
        println!("        run {}: off {t_off:.3} s, on {t_on:.3} s", i + 1);
        assert_eq!(
            (off_hops, off_events),
            (0, 0),
            "a disabled hub must keep journey capture and journaling off the hot path"
        );
        fleet_off_s.push(t_off);
        fleet_on_s.push(t_on);
        fleet_hops = on_hops;
        fleet_events = on_events;
    }
    let fleet_best_off = fleet_off_s.iter().cloned().fold(f64::INFINITY, f64::min);
    let fleet_best_on = fleet_on_s.iter().cloned().fold(f64::INFINITY, f64::min);
    let fleet_overhead_pct = (fleet_best_on - fleet_best_off) / fleet_best_off * 100.0;
    section("fleet tracing overhead (best of each arm, Fleet::run only)");
    row("fleet tracing off", format!("{fleet_best_off:.3} s"));
    row(
        "fleet tracing on (journeys+histograms+journal+SLO)",
        format!("{fleet_best_on:.3} s"),
    );
    row("added wall time", format!("{fleet_overhead_pct:+.2} %"));
    row("journey hops recorded", fleet_hops);
    row("fleet journal events", fleet_events);

    let attributed = !self_trace.is_empty() && self_trace.iter().all(|(_, w)| w.0 >= 0.0);
    let staged = t.stages.iter().all(|s| s.latency.count > 0);
    let traced_fleet = fleet_hops > 0 && fleet_events > 0;
    let ok = overhead_pct < budget_pct
        && fleet_overhead_pct < budget_pct
        && attributed
        && staged
        && traced_fleet;

    let json_path = std::path::Path::new("BENCH_overhead.json");
    if args.check {
        // Regression gate: the committed evidence must still claim the
        // full-schedule budget, and this run (at its own schedule's
        // budget) must reproduce the structural claims. Never rewrites.
        let text = std::fs::read_to_string(json_path).unwrap_or_else(|e| {
            eprintln!("cannot read BENCH_overhead.json: {e} — run e8_overhead first");
            std::process::exit(2);
        });
        let recorded_pct = json_number(&text, "overhead_pct").unwrap_or_else(|| {
            eprintln!("no overhead_pct in BENCH_overhead.json");
            std::process::exit(2);
        });
        let recorded_fleet_pct = json_number(&text, "fleet_overhead_pct").unwrap_or_else(|| {
            eprintln!("no fleet_overhead_pct in BENCH_overhead.json");
            std::process::exit(2);
        });
        let recorded_budget = json_number(&text, "budget_pct").unwrap_or(BUDGET_PCT);
        section("E8 overhead regression guard");
        row("recorded overhead", format!("{recorded_pct:+.3} %"));
        row(
            "recorded fleet overhead",
            format!("{recorded_fleet_pct:+.3} %"),
        );
        row("recorded budget", format!("{recorded_budget:.1} %"));
        row(
            "measured overhead (this schedule)",
            format!("{overhead_pct:+.3} %"),
        );
        row(
            "measured fleet overhead (this schedule)",
            format!("{fleet_overhead_pct:+.3} %"),
        );
        row("budget (this schedule)", format!("{budget_pct:.1} %"));
        let guard_ok = recorded_pct < recorded_budget && recorded_fleet_pct < recorded_budget && ok;
        println!();
        if !guard_ok {
            println!("E8 guard: FAIL");
            std::process::exit(1);
        }
        println!("E8 guard: PASS");
    } else {
        let mut f = std::fs::File::create(json_path).expect("evidence file");
        writeln!(f, "{{").expect("write");
        writeln!(f, "  \"experiment\": \"e8_overhead\",").expect("write");
        writeln!(f, "  \"quick\": {quick},").expect("write");
        writeln!(
            f,
            "  \"replay_duration_s\": {},",
            jbb.duration.as_secs_f64()
        )
        .expect("write");
        writeln!(f, "  \"runs_per_arm\": {runs_per_arm},").expect("write");
        writeln!(f, "  \"telemetry_off_best_s\": {best_off:.4},").expect("write");
        writeln!(f, "  \"telemetry_on_best_s\": {best_on:.4},").expect("write");
        writeln!(f, "  \"overhead_pct\": {overhead_pct:.3},").expect("write");
        writeln!(f, "  \"budget_pct\": {budget_pct},").expect("write");
        writeln!(f, "  \"fleet_hosts\": {fleet_hosts},").expect("write");
        writeln!(f, "  \"fleet_ticks\": {fleet_ticks},").expect("write");
        writeln!(f, "  \"fleet_tracing_off_best_s\": {fleet_best_off:.4},").expect("write");
        writeln!(f, "  \"fleet_tracing_on_best_s\": {fleet_best_on:.4},").expect("write");
        writeln!(f, "  \"fleet_overhead_pct\": {fleet_overhead_pct:.3},").expect("write");
        writeln!(f, "  \"fleet_journey_hops\": {fleet_hops},").expect("write");
        writeln!(f, "  \"fleet_journal_events\": {fleet_events},").expect("write");
        writeln!(f, "  \"ticks_traced\": {},", t.ticks_traced).expect("write");
        writeln!(f, "  \"messages_handled\": {},", t.messages_handled).expect("write");
        writeln!(
            f,
            "  \"middleware_busy_ms\": {:.4},",
            t.overhead.middleware_busy_ns as f64 / 1e6
        )
        .expect("write");
        writeln!(f, "  \"stages\": {{").expect("write");
        for (i, stage) in t.stages.iter().enumerate() {
            writeln!(
                f,
                "    \"{}\": {{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}}}{}",
                stage.stage,
                stage.latency.count,
                stage.latency.p50_ns,
                stage.latency.p95_ns,
                if i + 1 == t.stages.len() { "" } else { "," }
            )
            .expect("write");
        }
        writeln!(f, "  }},").expect("write");
        writeln!(f, "  \"self_pid\": {},", SELF_PID.0).expect("write");
        writeln!(f, "  \"self_power_reports\": {},", self_trace.len()).expect("write");
        writeln!(f, "  \"mean_self_power_w\": {self_mean_w:.4},").expect("write");
        writeln!(f, "  \"journal_events\": {},", hub.journal().emitted()).expect("write");
        writeln!(f, "  \"journal_dropped\": {},", hub.journal().dropped()).expect("write");
        writeln!(f, "  \"chrome_export_ms\": {chrome_ms:.3},").expect("write");
        writeln!(f, "  \"chrome_export_bytes\": {},", chrome.len()).expect("write");
        writeln!(f, "  \"jsonl_export_ms\": {jsonl_ms:.3},").expect("write");
        writeln!(f, "  \"jsonl_export_bytes\": {},", jsonl.len()).expect("write");
        writeln!(f, "  \"verdict\": \"{}\"", if ok { "PASS" } else { "FAIL" }).expect("write");
        writeln!(f, "}}").expect("write");
        println!();
        println!("        wrote {}", json_path.display());
    }

    println!();
    println!(
        "E8 verdict: {} (overhead {overhead_pct:+.2}% < {budget_pct}%, fleet tracing \
         {fleet_overhead_pct:+.2}% < {budget_pct}%, self-attributed: {attributed}, \
         all stages instrumented: {staged}, fleet traced: {traced_fleet})",
        if ok { "WITHIN BUDGET" } else { "OVER BUDGET" }
    );

    // Wall-derived percentages never belong in a golden set; the
    // simulation-derived shape of the instrumented run does.
    let mut golden = Golden::new(if quick {
        "e8_overhead.quick"
    } else {
        "e8_overhead"
    });
    golden.push_exact("ticks_traced", t.ticks_traced as f64);
    golden.push_exact("self_power_reports", self_trace.len() as f64);
    golden.push_exact("fleet_journey_hops", fleet_hops as f64);
    golden.push_exact("fleet_journal_events", fleet_events as f64);
    golden.push_tol("messages_handled", t.messages_handled as f64, 0.15);
    golden.push_tol("journal_events", hub.journal().emitted() as f64, 0.34);
    golden.push_exact("self_attributed", f64::from(attributed));
    golden.push_exact("all_stages_instrumented", f64::from(staged));
    golden.settle();

    if !ok {
        std::process::exit(1);
    }
}
