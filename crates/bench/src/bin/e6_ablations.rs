//! Experiment E6 — ablations of the design choices DESIGN.md calls out
//! (beyond the paper's published results, quantifying *why* its design is
//! what it is):
//!
//! 1. **per-frequency models vs one global model** — why Figure 1 fits a
//!    model per DVFS state;
//! 2. **SMT-aware calibration vs solo-only** — why the stress phase must
//!    exercise "the supported features" (§1);
//! 3. **PMU slot count** — what counter multiplexing costs the estimate.
//!
//! Run: `cargo run --release -p bench-suite --bin e6_ablations [--quick] [--check|--bless]`
//! (`--quick` learns on the quick grid and shortens the scoring runs;
//! each ablation's *direction* is what the verdict checks.)

use bench_suite::{row, section, BenchArgs, Evaluation, Golden};
use powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi::model::learn::{fit_from_samples, learn_model, measure_idle_power, LearnConfig};
use powerapi::model::power_model::PerFrequencyPowerModel;
use powerapi::model::sampling::{collect, CalibrationSample, SampleSet};
use simcpu::presets;
use simcpu::units::{MegaHertz, Nanos};
use workloads::specjbb::{self, SpecJbbConfig};

/// Scores a model on a SPECjbb excerpt (median APE %).
fn score(model: PerFrequencyPowerModel, secs: u64) -> f64 {
    let jbb = SpecJbbConfig {
        duration: Nanos::from_secs(secs),
        ..SpecJbbConfig::default()
    };
    Evaluation::new(
        presets::intel_i3_2120(),
        "jbb",
        specjbb::tasks(&jbb),
        jbb.duration,
    )
    .run(PerFrequencyFormula::new(model))
    .and_then(|o| bench_suite::score_outcome(&o))
    .expect("evaluation")
    .median_ape
}

fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    let jbb_secs = if quick { 120 } else { 300 };
    let machine = presets::intel_i3_2120();
    let cfg = if quick {
        LearnConfig::quick()
    } else {
        LearnConfig::default()
    };
    let idle = measure_idle_power(&machine, &cfg).expect("idle");
    let set = collect(&machine, &cfg.sampling).expect("campaign");

    // ------------------------------------------------------------------
    section("A1: per-frequency models vs one global model");
    let per_freq = fit_from_samples(idle, &set).expect("per-frequency fit");
    // Global model: every sample re-labelled to one pseudo-frequency, so
    // a single coefficient vector must cover the whole DVFS range.
    let global_set = SampleSet {
        events: set.events.clone(),
        samples: set
            .samples
            .iter()
            .map(|s| CalibrationSample {
                frequency: MegaHertz(3300),
                ..s.clone()
            })
            .collect(),
    };
    let global = fit_from_samples(idle, &global_set).expect("global fit");
    let pf_err = score(per_freq.clone(), jbb_secs);
    let g_err = score(global, jbb_secs);
    row(
        "per-frequency (paper design)",
        format!("{pf_err:.2} % median"),
    );
    row("single global model", format!("{g_err:.2} % median"));
    let a1 = pf_err <= g_err + 0.5;

    // ------------------------------------------------------------------
    section("A2: SMT-aware calibration vs solo-threads-only");
    let mut solo_cfg = cfg.clone();
    solo_cfg.sampling.both_smt_levels = false;
    let solo_model = learn_model(machine.clone(), &solo_cfg).expect("solo learning");
    // Isolate the SMT effect on a *cold*, fully co-run steady load (a
    // short run keeps thermal drift out of the picture).
    let corun_score = |model: PerFrequencyPowerModel| {
        Evaluation {
            clock: Nanos::from_millis(500),
            ..Evaluation::new(
                machine.clone(),
                "corun",
                (0..4)
                    .map(|_| {
                        os_sim::task::SteadyTask::boxed(simcpu::workunit::WorkUnit::cpu_intensive(
                            1.0,
                        ))
                    })
                    .collect(),
                Nanos::from_secs(10),
            )
        }
        .run(PerFrequencyFormula::new(model))
        .and_then(|o| bench_suite::score_outcome(&o))
        .expect("evaluation")
        .mape
    };
    let aware_corun = corun_score(per_freq.clone());
    let solo_corun = corun_score(solo_model.clone());
    row(
        "co-run load, SMT-aware calibration",
        format!("{aware_corun:.2} % MAPE"),
    );
    row(
        "co-run load, solo-only calibration",
        format!("{solo_corun:.2} % MAPE"),
    );
    let a2 = aware_corun < solo_corun;
    // On the long thermally-drifting SPECjbb run the two error sources
    // interact: the solo-only model's co-run *over*-estimation partly
    // cancels the thermal *under*-estimation. Report it as a finding.
    let solo_jbb = score(solo_model, jbb_secs);
    println!(
        "  (finding: on the hot {jbb_secs} s SPECjbb run, solo-only scores {solo_jbb:.1} % vs \
         {pf_err:.1} % — its overestimation happens to offset thermal drift; \
         error cancellation, not model quality)"
    );

    // ------------------------------------------------------------------
    section("A3: PMU slot count (counter multiplexing cost)");
    // Multiplexed scaling is exact on steady windows; its cost shows on
    // phase-changing counters. Measure the scaled-estimate deviation from
    // an unmultiplexed session over a SPECjbb excerpt.
    use perf_sim::events::PAPER_EVENTS;
    use perf_sim::session::PerfSession;
    let a3_ticks: u32 = if quick { 10_000 } else { 30_000 };
    let run_sessions = |slots: usize| -> f64 {
        let mut kernel = os_sim::kernel::Kernel::new(machine.clone());
        let jbb = SpecJbbConfig {
            duration: Nanos::from_secs(if quick { 10 } else { 30 }),
            ..SpecJbbConfig::default()
        };
        let pid = kernel.spawn("jbb", specjbb::tasks(&jbb));
        let mut mux = PerfSession::new(slots);
        let mut full = PerfSession::new(PAPER_EVENTS.len());
        let mux_ids: Vec<_> = PAPER_EVENTS
            .iter()
            .map(|&e| mux.open(pid, e).expect("open"))
            .collect();
        let full_ids: Vec<_> = PAPER_EVENTS
            .iter()
            .map(|&e| full.open(pid, e).expect("open"))
            .collect();
        for _ in 0..a3_ticks {
            let r = kernel.tick(Nanos::from_millis(1));
            mux.observe(&r);
            full.observe(&r);
        }
        // Mean relative deviation of scaled estimates from truth.
        let mut dev = 0.0;
        for (&m, &f) in mux_ids.iter().zip(&full_ids) {
            let est = mux.read(m).expect("open").scaled as f64;
            let truth = full.read(f).expect("open").raw as f64;
            if truth > 0.0 {
                dev += (est - truth).abs() / truth;
            }
        }
        dev / mux_ids.len() as f64 * 100.0
    };
    println!("  {:<10} {:>28}", "slots", "counter_deviation_%");
    let mut devs = Vec::new();
    for slots in [1usize, 2, 3] {
        let d = run_sessions(slots);
        println!("  {slots:<10} {d:>28.3}");
        devs.push(d);
    }
    let a3 = devs[2] <= devs[0] + 1e-9 && devs[2] < 0.01;
    row(
        "multiplexing deviation (1 slot vs dedicated)",
        format!("{:+.3} pp", devs[0] - devs[2]),
    );

    println!();
    let ok = a1 && a2 && a3;
    println!(
        "E6 verdict: {} (per-freq ≤ global: {a1}; SMT-aware < solo-only: {a2}; \
         no-multiplex ≤ heavy-multiplex: {a3})",
        if ok {
            "DESIGN CHOICES CONFIRMED"
        } else {
            "MISMATCH"
        }
    );
    let mut golden = Golden::new(if quick {
        "e6_ablations.quick"
    } else {
        "e6_ablations"
    });
    golden.push("per_freq_median_ape_pct", pf_err);
    golden.push("global_median_ape_pct", g_err);
    golden.push("smt_aware_corun_mape_pct", aware_corun);
    golden.push("solo_only_corun_mape_pct", solo_corun);
    golden.push("solo_only_jbb_median_ape_pct", solo_jbb);
    golden.push("mux_deviation_1slot_pct", devs[0]);
    golden.push("mux_deviation_2slot_pct", devs[1]);
    golden.push("mux_deviation_3slot_pct", devs[2]);
    golden.settle();

    if !ok {
        std::process::exit(1);
    }
}
