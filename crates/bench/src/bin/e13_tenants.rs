//! Experiment E13 — hierarchical tenant→service→process attribution
//! with a per-tick conservation audit. Four pipeline arms plus a small
//! cgrouped fleet, all over the same i3 testbed and per-frequency model:
//!
//! * **noisy** — noisy-neighbor tenants: a gold tenant (cgroup shares
//!   4096) and a bronze tenant (1024) contending for the same cores;
//!   the share-weighted scheduler must show up as a matching watt split;
//! * **bursty** — request-driven services duty-cycling at different
//!   periods, under PR 2 fault windows (counter stalls) that silence the
//!   primary formula and force degraded-quality fallback estimates —
//!   conservation must keep holding with `Quality` floors intact;
//! * **churn** — container start/stop storms: one container spawned and
//!   one killed every second, so windows constantly open and close
//!   mid-run; nothing may linger and no watt may escape the ledger;
//! * **churn-control** — the same base tenants with a static container
//!   set: the churn arm's machine-level error must stay within 1.10× of
//!   this clean baseline;
//! * **fleet** — 12 cgrouped hosts streaming grouped frames to sharded
//!   estimators, queried per tenant across shards; per-tenant sums plus
//!   the `__ungrouped__` catch-all must close against the per-host
//!   actives exactly.
//!
//! Every pipeline arm ends with `Hierarchy::assert_conserved`: child
//! sums equal each parent bit-for-bit, root = idle + top-level nodes
//! bit-for-bit, and the root stream reconciles with the plain machine
//! aggregator per timestamp (power, flush count, quality floor). The
//! fleet arm ends with `Fleet::assert_conserved` as in E12.
//!
//! Run:   `cargo run --release -p bench-suite --bin e13_tenants`
//! Quick: `... -- --quick`   (CI smoke: shorter runs)
//! Gate:  `... -- --check`   (golden check + reports/s regression guard)
//! Data:  `BENCH_tenants.json` (repo root, committed as evidence)

use bench_suite::{row, section, BenchArgs, Golden};
use os_sim::kernel::Kernel;
use os_sim::process::Pid;
use os_sim::task::{PeriodicTask, SteadyTask};
use perf_sim::events::PAPER_EVENTS;
use powerapi::fleet::{Fleet, FleetConfig, FrameSource, HostId, LinkFaultPlan, SimHostSource};
use powerapi::formula::cpuload::CpuLoadFormula;
use powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi::formula::PowerFormula;
use powerapi::hierarchy::{Hierarchy, UNGROUPED};
use powerapi::host::SimHost;
use powerapi::model::power_model::PerFrequencyPowerModel;
use powerapi::msg::Quality;
use powerapi::runtime::{PowerApi, RunOutcome};
use powermeter::powerspy::PowerSpyConfig;
use simcpu::fault::{FaultKind, FaultPlan, FaultWindow};
use simcpu::presets;
use simcpu::units::Nanos;
use simcpu::workunit::WorkUnit;
use std::io::Write;
use std::time::Instant;

/// Acceptance bound: churn-arm MAE within this factor of the control.
const MAX_ERROR_RATIO: f64 = 1.10;
/// Regression-guard tolerance: fail when >20 % below the recorded value.
const GUARD_DROP: f64 = 0.20;
/// Cgroup shares: the noisy arm's gold tenant outweighs bronze 4:1.
const GOLD_SHARES: u64 = 4096;
const BRONZE_SHARES: u64 = 1024;
/// Backup formula for the bursty arm's degradation path (i3 ballpark).
const BACKUP_IDLE_W: f64 = 30.0;
const BACKUP_SLOPE_W: f64 = 25.0;

/// Everything one pipeline arm produces.
struct Arm {
    outcome: RunOutcome,
    hierarchy: Hierarchy,
    mae_w: f64,
    /// Hierarchy flushes recorded (== audited ticks).
    ticks: usize,
}

fn formula() -> PerFrequencyFormula {
    PerFrequencyFormula::new(PerFrequencyPowerModel::paper_i3_example())
}

/// Mean power attributed to one node subtree over the run, watts.
fn node_mean_w(outcome: &RunOutcome, path: &str) -> f64 {
    let est = outcome.group_estimates(path);
    if est.is_empty() {
        return 0.0;
    }
    est.iter().map(|(_, w)| w.as_f64()).sum::<f64>() / est.len() as f64
}

/// Per-chunk kernel mutation: the churn schedule gets the live pipeline,
/// the hierarchy, and the chunk index.
type ChurnHook<'a> = &'a mut dyn FnMut(&mut PowerApi, &Hierarchy, u64);

/// Runs a pipeline over `kernel` with the hierarchy aggregator wired in,
/// optionally mutating the kernel between one-second chunks (the churn
/// schedule), and audits conservation before returning.
fn run_arm(
    kernel: Kernel,
    pids: Vec<Pid>,
    secs: u64,
    faults: FaultPlan,
    degrade: bool,
    churn: Option<ChurnHook<'_>>,
) -> Arm {
    let f = formula();
    let hierarchy = Hierarchy::new(f.idle_w());
    hierarchy.sync_cgroups(kernel.cgroups());
    let mut b = PowerApi::builder(kernel)
        .formula(f)
        .report_to_memory()
        .quantum(Nanos::from_millis(2))
        .clock_period(Nanos::from_millis(500))
        .fault_plan(faults)
        .hierarchy(&hierarchy);
    if degrade {
        b = b.degrade_to(
            CpuLoadFormula::new(BACKUP_IDLE_W, BACKUP_SLOPE_W),
            Nanos::from_millis(1500),
        );
    }
    let mut papi = b.build().expect("pipeline builds");
    hierarchy.bind_telemetry(papi.telemetry().clone());
    for pid in pids {
        papi.monitor(pid).expect("monitor");
    }
    match churn {
        None => papi.run_for(Nanos::from_secs(secs)).expect("run"),
        Some(mutate) => {
            for chunk in 0..secs {
                papi.run_for(Nanos::from_secs(1)).expect("run");
                mutate(&mut papi, &hierarchy, chunk);
            }
        }
    }
    let outcome = papi.finish().expect("shutdown");

    // The conservation audit: every flush, bit-exact, plus per-timestamp
    // reconciliation against the machine aggregator (power above idle,
    // flush counts, quality floors).
    hierarchy.assert_conserved(&outcome.reports);

    let mae_w = bench_suite::score_outcome(&outcome).expect("score").mae;
    Arm {
        mae_w,
        ticks: hierarchy.ticks(),
        outcome,
        hierarchy,
    }
}

/// Noisy-neighbor arm: gold and bronze tenants, identical demand,
/// unequal shares, everything contending for four cores.
fn noisy_kernel() -> (Kernel, Vec<Pid>) {
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    kernel.cgroup_create("tenant-gold", GOLD_SHARES);
    kernel.cgroup_create("tenant-bronze", BRONZE_SHARES);
    let mut pids = Vec::new();
    for (tenant, svc) in [
        ("tenant-gold", "svc-web"),
        ("tenant-gold", "svc-db"),
        ("tenant-bronze", "svc-batch"),
        ("tenant-bronze", "svc-scan"),
    ] {
        let path = format!("{tenant}/{svc}");
        // 2 greedy threads per service: 8 runnable threads on 4 cores,
        // so the scheduler's share weighting decides who actually runs.
        pids.push(kernel.spawn_in_cgroup(
            svc,
            &path,
            vec![
                SteadyTask::boxed(WorkUnit::cpu_intensive(1.0)),
                SteadyTask::boxed(WorkUnit::cpu_intensive(1.0)),
            ],
        ));
    }
    (kernel, pids)
}

/// Bursty arm: request-driven services duty-cycling at different phases.
fn bursty_kernel() -> (Kernel, Vec<Pid>) {
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    kernel.cgroup_create("tenant-gold", GOLD_SHARES);
    kernel.cgroup_create("tenant-bronze", BRONZE_SHARES);
    let mut pids = Vec::new();
    for (i, (tenant, svc, period_ms, duty)) in [
        ("tenant-gold", "svc-api", 2_000u64, 0.7),
        ("tenant-gold", "svc-worker", 5_000, 0.4),
        ("tenant-bronze", "svc-cron", 8_000, 0.3),
        ("tenant-bronze", "svc-index", 3_000, 0.5),
    ]
    .into_iter()
    .enumerate()
    {
        let path = format!("{tenant}/{svc}");
        pids.push(kernel.spawn_in_cgroup(
            svc,
            &path,
            vec![PeriodicTask::boxed(
                WorkUnit::cpu_intensive(0.6 + 0.1 * i as f64),
                Nanos::from_millis(period_ms),
                duty,
            )],
        ));
    }
    (kernel, pids)
}

/// The bursty arm's fault schedule: two counter-stall windows (the PR 2
/// machinery), pinned so quick and full runs cover them both. Stalled
/// counters silence the per-frequency primary; the cpu-load backup
/// serves degraded estimates. The second stall runs to the end of the
/// run, so the degraded tail is long and recovery is also exercised
/// (after window one).
fn bursty_faults(secs: u64) -> FaultPlan {
    let w = |start_s: u64, end_s: u64| FaultWindow {
        kind: FaultKind::CounterStall,
        start: Nanos::from_secs(start_s),
        end: Nanos::from_secs(end_s),
        magnitude: 0.0,
    };
    FaultPlan::from_windows(vec![w(secs / 4, secs / 4 + 3), w(secs / 2, secs)])
}

/// Base kernel for the churn arms: two long-lived tenants.
fn churn_base() -> (Kernel, Vec<Pid>) {
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    kernel.cgroup_create("tenant-gold", GOLD_SHARES);
    kernel.cgroup_create("tenant-bronze", BRONZE_SHARES);
    let a = kernel.spawn_in_cgroup(
        "svc-web",
        "tenant-gold/svc-web",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.5))],
    );
    let b = kernel.spawn_in_cgroup(
        "svc-batch",
        "tenant-bronze/svc-batch",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.4))],
    );
    (kernel, vec![a, b])
}

/// One simulated fleet host with cgrouped tenants (index varies load and
/// which tenants it runs).
fn fleet_source(index: usize) -> Box<dyn FrameSource> {
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    kernel.cgroup_create("tenant-gold", GOLD_SHARES);
    kernel.cgroup_create("tenant-bronze", BRONZE_SHARES);
    let mut pids = Vec::new();
    let gold_load = 0.3 + 0.05 * (index % 5) as f64;
    pids.push(kernel.spawn_in_cgroup(
        "svc-web",
        "tenant-gold/svc-web",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(gold_load))],
    ));
    if index.is_multiple_of(2) {
        pids.push(kernel.spawn_in_cgroup(
            "svc-batch",
            "tenant-bronze/svc-batch",
            vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.25))],
        ));
    }
    // One process outside every cgroup: the fleet's per-tenant ledger
    // must still close via the catch-all.
    pids.push(kernel.spawn(
        format!("stray-{index}"),
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.1))],
    ));
    let mut host = SimHost::new(kernel, PAPER_EVENTS.to_vec(), 4, PowerSpyConfig::default());
    for pid in pids {
        host.monitor(pid).expect("monitor");
    }
    for _ in 0..30 {
        host.step(Nanos::from_secs(1));
    }
    Box::new(SimHostSource::new(host, Nanos::from_millis(250), 4))
}

/// Pulls `"key": <number>` out of flat JSON (the evidence file is written
/// by this binary with globally unique keys, so no real parser needed).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    section(if quick {
        "E13: hierarchical tenant attribution (quick)"
    } else {
        "E13: hierarchical tenant attribution"
    });

    let (noisy_secs, bursty_secs, churn_chunks) = if quick { (8, 12, 10) } else { (20, 30, 24) };

    println!(
        "  [1/5] noisy-neighbor arm: gold (shares {GOLD_SHARES}) vs bronze ({BRONZE_SHARES})…"
    );
    let (kernel, pids) = noisy_kernel();
    let noisy = run_arm(kernel, pids, noisy_secs, FaultPlan::none(), false, None);
    let gold_w = node_mean_w(&noisy.outcome, "tenant-gold");
    let bronze_w = node_mean_w(&noisy.outcome, "tenant-bronze");
    let watt_skew = gold_w / bronze_w.max(1e-9);

    println!("  [2/5] bursty arm: duty-cycled services under counter-stall windows…");
    let (kernel, pids) = bursty_kernel();
    let bursty = run_arm(
        kernel,
        pids,
        bursty_secs,
        bursty_faults(bursty_secs),
        true,
        None,
    );
    // Quality must actually have degraded somewhere (the fault windows
    // bite), and conservation held anyway (asserted inside run_arm).
    let degraded_flushes = bursty
        .hierarchy
        .ledger()
        .iter()
        .filter(|f| f.nodes[powerapi::hierarchy::ROOT].quality_or_full() < Quality::Full)
        .count();

    println!("  [3/5] churn arm: one container spawned + one killed per second…");
    let (kernel, pids) = churn_base();
    let mut live: Vec<(u64, Pid)> = Vec::new();
    let mut spawned = 0u64;
    let mut mutate = |papi: &mut PowerApi, hierarchy: &Hierarchy, chunk: u64| {
        // Kill everything older than 3 chunks — a start/stop storm with
        // a steady-state population of 3 containers.
        while let Some(&(born, pid)) = live.first() {
            if chunk < born + 3 {
                break;
            }
            live.remove(0);
            papi.unmonitor(pid);
            papi.kernel_mut().kill(pid).expect("kill container");
        }
        let tenant = if chunk.is_multiple_of(2) {
            "tenant-gold"
        } else {
            "tenant-bronze"
        };
        let path = format!("{tenant}/svc-burst/job-{chunk}");
        let pid = papi.kernel_mut().spawn_in_cgroup(
            format!("job-{chunk}"),
            &path,
            vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.6))],
        );
        papi.monitor(pid).expect("monitor container");
        live.push((chunk, pid));
        spawned += 1;
        hierarchy.sync_cgroups(papi.kernel().cgroups());
    };
    let churn = run_arm(
        kernel,
        pids,
        churn_chunks,
        FaultPlan::none(),
        false,
        Some(&mut mutate),
    );

    println!("  [4/5] churn-control arm: same tenants, static container set…");
    let (mut kernel, mut pids) = churn_base();
    // The churn arm's steady-state population (3 containers at 0.6 load),
    // alive for the whole run: the clean baseline the storm is scored
    // against.
    for c in 0..3u64 {
        let tenant = if c.is_multiple_of(2) {
            "tenant-gold"
        } else {
            "tenant-bronze"
        };
        let path = format!("{tenant}/svc-burst/job-{c}");
        pids.push(kernel.spawn_in_cgroup(
            format!("job-{c}"),
            &path,
            vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.6))],
        ));
    }
    let control = run_arm(kernel, pids, churn_chunks, FaultPlan::none(), false, None);
    let error_ratio = churn.mae_w / control.mae_w.max(1e-9);

    println!("  [5/5] fleet arm: 12 cgrouped hosts, per-tenant queries across shards…");
    let fleet_hosts = 12usize;
    let fleet_ticks = if quick { 12 } else { 24 };
    let f = formula();
    let idle_w = f.idle_w();
    let cfg = FleetConfig {
        shards: 4,
        events: PAPER_EVENTS.to_vec(),
        fault: LinkFaultPlan::none(),
        ..FleetConfig::default()
    };
    let sources: Vec<Box<dyn FrameSource>> = (0..fleet_hosts).map(fleet_source).collect();
    let fleet_telemetry = powerapi::telemetry::Telemetry::new();
    let mut fleet = Fleet::new(cfg, &f, sources, fleet_telemetry.clone());
    fleet.run(fleet_ticks);
    fleet.assert_conserved();
    // `--dump-trace` captures the fleet arm: journey tracks per frame
    // plus the journal instants the cgrouped fleet emitted.
    if let Some(path) = &args.dump_trace {
        bench_suite::fleetsim::dump_fleet_trace(
            &fleet_telemetry,
            &fleet.journeys().snapshot(),
            fleet.tick_ns(),
            path,
        );
    }
    let paths = fleet.tenant_paths();
    let gold_fleet = fleet.tenant_estimate("tenant-gold").expect("gold tenant");
    let bronze_fleet = fleet
        .tenant_estimate("tenant-bronze")
        .expect("bronze tenant");
    let stray_fleet = fleet.tenant_estimate(UNGROUPED).expect("catch-all");
    // The fleet per-tenant ledger closes: tenants + catch-all must equal
    // the summed per-host actives (host tracks carry idle; subtract it).
    let host_active: f64 = (0..fleet_hosts)
        .map(|h| {
            let host = HostId(h as u32);
            let s = powerapi::fleet::shard::route(host, 4);
            fleet
                .shard(s)
                .track(host)
                .map_or(0.0, |t| t.power_w - idle_w)
        })
        .sum();
    let tenant_sum = gold_fleet.power_w + bronze_fleet.power_w + stray_fleet.power_w;
    let fleet_closure = (tenant_sum - host_active).abs();
    assert!(
        fleet_closure < 1e-9,
        "fleet per-tenant ledger leaks: tenants {tenant_sum} W vs hosts {host_active} W"
    );

    // Roll-up throughput guard: replay the conservation audit (which
    // re-runs the roll-up per flush, single-threaded and CPU-bound —
    // stable wall clock, unlike the threaded pipeline) over a fixed-size
    // ledger until ≥0.5 s has elapsed. The arm sizes change with
    // --quick; this run never does.
    let (kernel, pids) = noisy_kernel();
    let guard = run_arm(kernel, pids, 8, FaultPlan::none(), false, None);
    let mut audits = 0u64;
    let t0 = Instant::now();
    while t0.elapsed().as_secs_f64() < 0.5 {
        guard
            .hierarchy
            .conservation()
            .expect("guard ledger conserves");
        audits += guard.ticks as u64;
    }
    let guard_audits_per_s = audits as f64 / t0.elapsed().as_secs_f64();

    section("conservation audit (every arm, every tick)");
    row("noisy arm ticks audited", noisy.ticks);
    row("bursty arm ticks audited", bursty.ticks);
    row("churn arm ticks audited", churn.ticks);
    row("control arm ticks audited", control.ticks);
    row(
        "bursty flushes with degraded quality",
        format!("{degraded_flushes} (conservation held throughout)"),
    );
    let prom = bursty.hierarchy.ledger().len(); // ledger size == flush counter
    row("bursty ledger flushes", prom);

    section("E13 headline numbers");
    row(
        "noisy: gold / bronze tenant watts",
        format!("{gold_w:.3} / {bronze_w:.3} W ({watt_skew:.2}× skew)"),
    );
    row("noisy MAE vs meter", format!("{:.3} W", noisy.mae_w));
    row("bursty MAE vs meter", format!("{:.3} W", bursty.mae_w));
    row("churn containers spawned", spawned);
    row("churn MAE vs meter", format!("{:.3} W", churn.mae_w));
    row("control MAE vs meter", format!("{:.3} W", control.mae_w));
    row(
        "churn / control error ratio",
        format!("{error_ratio:.3}× (bound {MAX_ERROR_RATIO}×)"),
    );
    row("fleet tenant paths", paths.len());
    row(
        "fleet gold/bronze/stray watts",
        format!(
            "{:.2} / {:.2} / {:.2} W across {} hosts",
            gold_fleet.power_w, bronze_fleet.power_w, stray_fleet.power_w, gold_fleet.hosts
        ),
    );
    row("fleet ledger closure", format!("{fleet_closure:.2e} W"));
    row(
        "guard conservation audits/s",
        format!("{guard_audits_per_s:.0}"),
    );

    let ok = watt_skew > 1.5
        && degraded_flushes > 0
        && error_ratio <= MAX_ERROR_RATIO
        && gold_fleet.quality == Quality::Full
        && gold_fleet.hosts == fleet_hosts
        && bronze_fleet.hosts == fleet_hosts / 2
        && !paths.is_empty();

    let json_path = std::path::Path::new("BENCH_tenants.json");
    if args.check {
        // Regression guard: compare against the committed evidence file
        // without rewriting it (mirrors E12's gate).
        let recorded = std::fs::read_to_string(json_path)
            .ok()
            .as_deref()
            .and_then(|t| json_number(t, "guard_audits_per_s"))
            .unwrap_or_else(|| {
                eprintln!("no guard_audits_per_s in BENCH_tenants.json — run e13_tenants first");
                std::process::exit(2);
            });
        let floor = recorded * (1.0 - GUARD_DROP);
        section("E13 conservation-audit regression guard");
        row("recorded audits/s", format!("{recorded:.0}"));
        row("measured audits/s", format!("{guard_audits_per_s:.0}"));
        row("floor (−20 %)", format!("{floor:.0}"));
        if guard_audits_per_s < floor {
            println!();
            println!("E13 guard: FAIL ({guard_audits_per_s:.0} audits/s vs floor {floor:.0})");
            std::process::exit(1);
        }
        println!();
        println!("E13 guard: PASS ({guard_audits_per_s:.0} audits/s vs floor {floor:.0})");
    } else {
        let mut file = std::fs::File::create(json_path).expect("evidence file");
        writeln!(file, "{{").expect("write");
        writeln!(file, "  \"experiment\": \"e13_tenants\",").expect("write");
        writeln!(file, "  \"quick\": {quick},").expect("write");
        writeln!(file, "  \"noisy_secs\": {noisy_secs},").expect("write");
        writeln!(file, "  \"bursty_secs\": {bursty_secs},").expect("write");
        writeln!(file, "  \"churn_chunks\": {churn_chunks},").expect("write");
        writeln!(file, "  \"noisy_ticks_audited\": {},", noisy.ticks).expect("write");
        writeln!(file, "  \"bursty_ticks_audited\": {},", bursty.ticks).expect("write");
        writeln!(file, "  \"churn_ticks_audited\": {},", churn.ticks).expect("write");
        writeln!(file, "  \"control_ticks_audited\": {},", control.ticks).expect("write");
        writeln!(file, "  \"noisy_gold_w\": {gold_w:.4},").expect("write");
        writeln!(file, "  \"noisy_bronze_w\": {bronze_w:.4},").expect("write");
        writeln!(file, "  \"noisy_watt_skew\": {watt_skew:.4},").expect("write");
        writeln!(file, "  \"noisy_mae_w\": {:.4},", noisy.mae_w).expect("write");
        writeln!(file, "  \"bursty_mae_w\": {:.4},", bursty.mae_w).expect("write");
        writeln!(file, "  \"bursty_degraded_flushes\": {degraded_flushes},").expect("write");
        writeln!(file, "  \"churn_spawned\": {spawned},").expect("write");
        writeln!(file, "  \"churn_mae_w\": {:.4},", churn.mae_w).expect("write");
        writeln!(file, "  \"control_mae_w\": {:.4},", control.mae_w).expect("write");
        writeln!(file, "  \"error_ratio\": {error_ratio:.4},").expect("write");
        writeln!(file, "  \"fleet_hosts\": {fleet_hosts},").expect("write");
        writeln!(file, "  \"fleet_ticks\": {fleet_ticks},").expect("write");
        writeln!(file, "  \"fleet_tenant_paths\": {},", paths.len()).expect("write");
        writeln!(file, "  \"fleet_gold_w\": {:.4},", gold_fleet.power_w).expect("write");
        writeln!(file, "  \"fleet_bronze_w\": {:.4},", bronze_fleet.power_w).expect("write");
        writeln!(file, "  \"fleet_stray_w\": {:.4},", stray_fleet.power_w).expect("write");
        writeln!(file, "  \"fleet_closure_w\": {fleet_closure:.2e},").expect("write");
        writeln!(file, "  \"guard_audits_per_s\": {guard_audits_per_s:.2},").expect("write");
        writeln!(
            file,
            "  \"verdict\": \"{}\"",
            if ok { "PASS" } else { "FAIL" }
        )
        .expect("write");
        writeln!(file, "}}").expect("write");
        println!("        wrote {}", json_path.display());
    }

    println!();
    println!(
        "E13 verdict: {} (skew {watt_skew:.2}x, error ratio {error_ratio:.3}x <= \
         {MAX_ERROR_RATIO}x, {} + {} + {} + {} ticks conserved, fleet ledger closed)",
        if ok { "CONSERVED" } else { "LEDGER LEAKS" },
        noisy.ticks,
        bursty.ticks,
        churn.ticks,
        control.ticks,
    );

    // Only deterministic metrics: the pipeline is sim-clocked and the
    // fleet is single-threaded. The churn arm's per-tenant split is
    // excluded — a boundary tick folded before vs after a membership
    // re-sync lands in a different (equally conserved) leaf. The bursty
    // arm is excluded entirely: degradation onset shifts by ±1 tick with
    // the cross-sensor interleave (conservation holds either way).
    let mut golden = Golden::new(if quick {
        "e13_tenants.quick"
    } else {
        "e13_tenants"
    });
    golden.push("noisy_gold_w", gold_w);
    golden.push("noisy_bronze_w", bronze_w);
    golden.push("noisy_mae_w", noisy.mae_w);
    golden.push_exact("noisy_ticks", noisy.ticks as f64);
    golden.push_exact("churn_ticks", churn.ticks as f64);
    golden.push_exact("control_ticks", control.ticks as f64);
    golden.push_exact("churn_spawned", spawned as f64);
    golden.push("churn_mae_w", churn.mae_w);
    golden.push("control_mae_w", control.mae_w);
    golden.push_exact("fleet_tenant_paths", paths.len() as f64);
    golden.push("fleet_gold_w", gold_fleet.power_w);
    golden.push("fleet_bronze_w", bronze_fleet.power_w);
    golden.push("fleet_stray_w", stray_fleet.power_w);
    golden.settle();

    if !ok {
        std::process::exit(1);
    }
}
