//! Numerical-substrate benchmarks: the multivariate regression and rank
//! correlation at the heart of the Figure 1 learning process. Model
//! learning happens offline, but re-fits must stay cheap enough to run
//! online (the paper aims at automatic, continuous profile learning).

use criterion::{criterion_group, criterion_main, Criterion};
use mathkit::correlation::spearman;
use mathkit::linreg::{FitOptions, LinearModel, Solver};
use mathkit::matrix::Matrix;

/// Deterministic pseudo-random design of `n` rows by `p` columns.
fn design(n: usize, p: usize) -> (Matrix, Vec<f64>) {
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..p).map(|_| next() * 1e9).collect())
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| {
            30.0 + r
                .iter()
                .enumerate()
                .map(|(i, v)| v * (i + 1) as f64 * 1e-9)
                .sum::<f64>()
        })
        .collect();
    (Matrix::from_rows(&rows).expect("rectangular"), y)
}

fn bench_regression(c: &mut Criterion) {
    let mut group = c.benchmark_group("regression");
    group.sample_size(30);

    let (x, y) = design(800, 3);
    group.bench_function("ols_qr_800x3", |b| {
        b.iter(|| LinearModel::fit(&x, &y).expect("fit"));
    });
    group.bench_function("ols_normal_eq_800x3", |b| {
        b.iter(|| {
            LinearModel::fit_with(&x, &y, &FitOptions::new().solver(Solver::NormalEquations))
                .expect("fit")
        });
    });

    let (x12, y12) = design(800, 12);
    group.bench_function("ols_qr_800x12", |b| {
        b.iter(|| LinearModel::fit(&x12, &y12).expect("fit"));
    });

    let a: Vec<f64> = (0..10_000).map(|i| ((i * 37) % 1000) as f64).collect();
    let bvec: Vec<f64> = (0..10_000).map(|i| ((i * 91) % 997) as f64).collect();
    group.bench_function("spearman_10k", |b| {
        b.iter(|| spearman(&a, &bvec).expect("correlation"));
    });

    group.finish();
}

criterion_group!(benches, bench_regression);
criterion_main!(benches);
