//! Substrate benchmarks: how fast the simulated machine and kernel
//! advance. These bound how much simulated time the experiments can
//! cover; they also double as regression guards against accidental
//! per-tick blowups.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use os_sim::kernel::Kernel;
use os_sim::task::SteadyTask;
use simcpu::machine::Machine;
use simcpu::presets;
use simcpu::units::Nanos;
use simcpu::workunit::WorkUnit;

const TICKS: u64 = 1_000;
const MS: u64 = 1_000_000;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.throughput(Throughput::Elements(TICKS));
    group.sample_size(20);

    group.bench_function("machine_tick_idle", |b| {
        let mut m = Machine::new(presets::intel_i3_2120());
        b.iter(|| {
            for _ in 0..TICKS {
                m.tick(&[None, None, None, None], MS);
            }
        });
    });

    group.bench_function("machine_tick_full_load", |b| {
        let mut m = Machine::new(presets::intel_i3_2120());
        let w = WorkUnit::cpu_intensive(1.0);
        b.iter(|| {
            for _ in 0..TICKS {
                m.tick(&[Some(&w), Some(&w), Some(&w), Some(&w)], MS);
            }
        });
    });

    group.bench_function("kernel_tick_4_threads", |b| {
        let mut k = Kernel::new(presets::intel_i3_2120());
        let w = WorkUnit::mixed(0.5, 16384.0, 1.0);
        k.spawn("bench", (0..4).map(|_| SteadyTask::boxed(w)).collect());
        b.iter(|| {
            for _ in 0..TICKS {
                k.tick(Nanos(MS));
            }
        });
    });

    group.bench_function("kernel_tick_oversubscribed_16_threads", |b| {
        let mut k = Kernel::new(presets::intel_i3_2120());
        let w = WorkUnit::cpu_intensive(1.0);
        k.spawn("bench", (0..16).map(|_| SteadyTask::boxed(w)).collect());
        b.iter(|| {
            for _ in 0..TICKS {
                k.tick(Nanos(MS));
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
