//! Middleware throughput benchmarks — the paper's performance claim P1:
//! an actor "can handle millions of messages per second, … a key property
//! for supporting real-time power estimations" (§3). Criterion reports
//! elements/second; the claim holds when `bus_publish` and
//! `actor_pipeline` exceed 1e6 msg/s.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use os_sim::process::Pid;
use powerapi::actor::{Actor, ActorSystem, Context};
use powerapi::msg::{Message, PowerReport, Topic};
use simcpu::units::{Nanos, Watts};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Sink(Arc<AtomicU64>);

impl Actor for Sink {
    fn handle(&mut self, _msg: Message, _ctx: &Context) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

struct Relay;

impl Actor for Relay {
    fn handle(&mut self, msg: Message, ctx: &Context) {
        if let Message::Power(p) = msg {
            ctx.bus()
                .publish(Message::Aggregate(powerapi::msg::AggregateReport {
                    timestamp: p.timestamp,
                    scope: powerapi::msg::Scope::Process(p.pid),
                    power: p.power,
                    band_w: p.band_w,
                    quality: p.quality,
                    trace: p.trace,
                }));
        }
    }
}

fn power_msg() -> Message {
    Message::Power(PowerReport {
        timestamp: Nanos(1),
        pid: Pid(1),
        power: Watts(4.2),
        formula: "bench",
        band_w: Watts(0.0),
        quality: powerapi::msg::Quality::Full,
        trace: powerapi::telemetry::TraceId::NONE,
    })
}

const BATCH: u64 = 10_000;

fn bench_bus_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("middleware");
    group.throughput(Throughput::Elements(BATCH));
    group.sample_size(20);

    group.bench_function("bus_publish_1_subscriber", |b| {
        b.iter_batched(
            || {
                let mut sys = ActorSystem::new();
                let n = Arc::new(AtomicU64::new(0));
                let sink = sys.spawn("sink", Box::new(Sink(n)));
                sys.bus().subscribe(Topic::Power, &sink);
                sys
            },
            |sys| {
                for _ in 0..BATCH {
                    sys.bus().publish(power_msg());
                }
                sys.shutdown(); // drain: all messages processed
            },
            BatchSize::PerIteration,
        );
    });

    group.bench_function("actor_pipeline_2_stages", |b| {
        b.iter_batched(
            || {
                let mut sys = ActorSystem::new();
                let n = Arc::new(AtomicU64::new(0));
                let relay = sys.spawn("relay", Box::new(Relay));
                let sink = sys.spawn("sink", Box::new(Sink(n)));
                sys.bus().subscribe(Topic::Power, &relay);
                sys.bus().subscribe(Topic::Aggregate, &sink);
                sys
            },
            |sys| {
                for _ in 0..BATCH {
                    sys.bus().publish(power_msg());
                }
                sys.shutdown();
            },
            BatchSize::PerIteration,
        );
    });

    group.bench_function("mailbox_send_only", |b| {
        let mut sys = ActorSystem::new();
        let n = Arc::new(AtomicU64::new(0));
        let sink = sys.spawn("sink", Box::new(Sink(n)));
        b.iter(|| {
            for _ in 0..BATCH {
                sink.send(power_msg());
            }
        });
        sys.shutdown();
    });

    group.finish();
}

criterion_group!(benches, bench_bus_publish);
criterion_main!(benches);
