//! Calibration-sweep benchmark: the quick-grid sweep run serially versus
//! fanned across every core. The parallel path must be bit-identical to
//! the serial one (covered by unit tests); this benchmark tracks the
//! wall-clock side of that bargain — the fan-out should pay, and the
//! `parallelism = 1` fast path must not regress against the old loop.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use powerapi::model::sampling::{collect, SamplingConfig};
use simcpu::presets;

fn sweep_cfg(parallelism: usize) -> SamplingConfig {
    let mut cfg = SamplingConfig::quick();
    cfg.parallelism = parallelism;
    cfg
}

fn bench_calibration(c: &mut Criterion) {
    let machine = presets::intel_i3_2120();
    // Quick grid: 3 frequencies × 2 SMT levels × 6 points.
    let cells = 36u64;

    let mut group = c.benchmark_group("calibration");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cells));
    group.bench_function("sweep_serial", |b| {
        b.iter(|| collect(&machine, &sweep_cfg(1)).expect("serial sweep"));
    });
    group.bench_function("sweep_parallel_all_cores", |b| {
        b.iter(|| collect(&machine, &sweep_cfg(0)).expect("parallel sweep"));
    });
    group.finish();
}

criterion_group!(benches, bench_calibration);
criterion_main!(benches);
