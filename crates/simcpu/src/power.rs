//! The hidden ground-truth power model.
//!
//! Everything the learner is ever shown — meter watts, RAPL energy — is
//! derived from this model, but the model itself is *not* observable
//! through the public monitoring APIs, mirroring real hardware. It
//! deliberately contains terms a per-frequency linear model over
//! `(instructions, cache-references, cache-misses)` cannot express:
//!
//! * core baseline power `k · V² · f` tied to *busy time*, not retired
//!   events (workloads with different IPC decouple the two);
//! * a sub-additive SMT term (the second hyperthread adds only a fraction
//!   of the core baseline);
//! * voltage-squared scaling of per-event energies (turbo bins run hotter
//!   per event than their nominal neighbours);
//! * uncore power tied to *any-core-active* time.
//!
//! These are exactly the effects the paper's §4 discussion attributes the
//! residual estimation error to (HyperThreading, TurboBoost).

use crate::counters::ExecDelta;
use crate::cstate::CState;
use crate::freq::PState;
use crate::units::{Nanos, Watts};

/// Ground-truth power model parameters for one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    platform_idle_w: f64,
    package_idle_w: f64,
    core_baseline_w_per_ghz_v2: f64,
    core_c0_idle_w: f64,
    smt_second_thread_factor: f64,
    uncore_active_w: f64,
    energy_inst_nj: f64,
    energy_fp_extra_nj: f64,
    energy_branch_miss_nj: f64,
    energy_llc_ref_nj: f64,
    energy_dram_nj: f64,
    vref: f64,
    thermal_tau_s: f64,
    thermal_resistance_c_per_w: f64,
    thermal_leak_w_per_c: f64,
    ambient_c: f64,
}

/// Builder for [`PowerModel`] with sensible Sandy-Bridge-class defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModelBuilder {
    model: PowerModel,
}

impl Default for PowerModelBuilder {
    fn default() -> PowerModelBuilder {
        PowerModelBuilder {
            model: PowerModel {
                platform_idle_w: 26.0,
                package_idle_w: 5.5,
                core_baseline_w_per_ghz_v2: 2.7,
                core_c0_idle_w: 1.2,
                smt_second_thread_factor: 0.25,
                uncore_active_w: 2.0,
                energy_inst_nj: 0.35,
                energy_fp_extra_nj: 1.0,
                energy_branch_miss_nj: 5.0,
                energy_llc_ref_nj: 8.0,
                energy_dram_nj: 60.0,
                vref: 1.05,
                thermal_tau_s: 30.0,
                thermal_resistance_c_per_w: 1.2,
                thermal_leak_w_per_c: 0.25,
                ambient_c: 35.0,
            },
        }
    }
}

impl PowerModelBuilder {
    /// Starts from the defaults.
    pub fn new() -> PowerModelBuilder {
        PowerModelBuilder::default()
    }

    /// Whole-platform (board, RAM idle, disk, PSU) power floor in watts.
    pub fn platform_idle_w(mut self, w: f64) -> PowerModelBuilder {
        self.model.platform_idle_w = w.max(0.0);
        self
    }

    /// Package idle power with all cores in their deepest C-state.
    pub fn package_idle_w(mut self, w: f64) -> PowerModelBuilder {
        self.model.package_idle_w = w.max(0.0);
        self
    }

    /// Per-core busy baseline coefficient: watts per (GHz · V²).
    pub fn core_baseline_w_per_ghz_v2(mut self, k: f64) -> PowerModelBuilder {
        self.model.core_baseline_w_per_ghz_v2 = k.max(0.0);
        self
    }

    /// Power of a core awake in C0 but doing nothing (clock running).
    pub fn core_c0_idle_w(mut self, w: f64) -> PowerModelBuilder {
        self.model.core_c0_idle_w = w.max(0.0);
        self
    }

    /// Extra fraction of the core baseline added when the second SMT
    /// thread is also busy (0 = free, 1 = fully additive).
    pub fn smt_second_thread_factor(mut self, f: f64) -> PowerModelBuilder {
        self.model.smt_second_thread_factor = f.clamp(0.0, 1.0);
        self
    }

    /// Uncore/LLC power when any core is active.
    pub fn uncore_active_w(mut self, w: f64) -> PowerModelBuilder {
        self.model.uncore_active_w = w.max(0.0);
        self
    }

    /// Energy per retired instruction at `vref`, nanojoules.
    pub fn energy_inst_nj(mut self, nj: f64) -> PowerModelBuilder {
        self.model.energy_inst_nj = nj.max(0.0);
        self
    }

    /// Extra energy per floating-point instruction (on top of the base
    /// instruction energy), nanojoules. FP retirement is not visible to
    /// the generic counters, making this a structural error source for
    /// generic-counter power models.
    pub fn energy_fp_extra_nj(mut self, nj: f64) -> PowerModelBuilder {
        self.model.energy_fp_extra_nj = nj.max(0.0);
        self
    }

    /// Energy per branch misprediction (flush), nanojoules.
    pub fn energy_branch_miss_nj(mut self, nj: f64) -> PowerModelBuilder {
        self.model.energy_branch_miss_nj = nj.max(0.0);
        self
    }

    /// Energy per LLC reference, nanojoules.
    pub fn energy_llc_ref_nj(mut self, nj: f64) -> PowerModelBuilder {
        self.model.energy_llc_ref_nj = nj.max(0.0);
        self
    }

    /// Energy per DRAM access (LLC miss), nanojoules.
    pub fn energy_dram_nj(mut self, nj: f64) -> PowerModelBuilder {
        self.model.energy_dram_nj = nj.max(0.0);
        self
    }

    /// Reference voltage the per-event energies are specified at.
    pub fn vref(mut self, v: f64) -> PowerModelBuilder {
        self.model.vref = v.max(0.1);
        self
    }

    /// Thermal time constant in seconds (0 disables the thermal model).
    ///
    /// Die temperature follows package power with this lag, and leakage
    /// rises with temperature — a *history-dependent* power term that no
    /// instantaneous counter model can express. McCullough et al. (cited
    /// as \[5\] in the paper) identify exactly this as a main source of
    /// linear-model error on multicore parts.
    pub fn thermal_tau_s(mut self, tau: f64) -> PowerModelBuilder {
        self.model.thermal_tau_s = tau.max(0.0);
        self
    }

    /// Junction-to-ambient thermal resistance, °C per package watt.
    pub fn thermal_resistance_c_per_w(mut self, r: f64) -> PowerModelBuilder {
        self.model.thermal_resistance_c_per_w = r.max(0.0);
        self
    }

    /// Extra leakage per °C above the idle-steady-state temperature.
    pub fn thermal_leak_w_per_c(mut self, w: f64) -> PowerModelBuilder {
        self.model.thermal_leak_w_per_c = w.max(0.0);
        self
    }

    /// Ambient temperature, °C.
    pub fn ambient_c(mut self, t: f64) -> PowerModelBuilder {
        self.model.ambient_c = t;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> PowerModel {
        self.model
    }
}

/// Activity of one physical core over a slice, as the machine aggregates
/// it before asking the model for power.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSlice {
    /// Operating point the core ran at.
    pub pstate: PState,
    /// Busy fraction of each SMT thread (index 1 is 0.0 without SMT).
    pub thread_busy: [f64; 2],
    /// Retired events of each SMT thread.
    pub deltas: [ExecDelta; 2],
    /// Idle state used for the non-busy residue of the slice.
    pub idle_state: CState,
}

/// Power decomposition for one slice, all in average watts over the slice.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Constant platform floor.
    pub platform: f64,
    /// Package idle floor.
    pub package_idle: f64,
    /// Σ core baselines (busy-time · k · V² · f, with SMT factor).
    pub core_baseline: f64,
    /// Σ C0-idle and C-state residue power.
    pub core_idle: f64,
    /// Per-event (instruction/branch/LLC) energy converted to watts.
    pub core_events: f64,
    /// Uncore active power.
    pub uncore: f64,
    /// DRAM access power (outside the package).
    pub dram: f64,
}

impl PowerBreakdown {
    /// Whole-machine power (what a wall-socket meter sees).
    pub fn machine(&self) -> Watts {
        Watts(
            self.platform
                + self.package_idle
                + self.core_baseline
                + self.core_idle
                + self.core_events
                + self.uncore
                + self.dram,
        )
    }

    /// CPU-package power (what RAPL's PKG domain sees — excludes platform
    /// and DRAM DIMMs).
    pub fn package(&self) -> Watts {
        Watts(
            self.package_idle
                + self.core_baseline
                + self.core_idle
                + self.core_events
                + self.uncore,
        )
    }
}

impl PowerModel {
    /// Starts a builder.
    pub fn builder() -> PowerModelBuilder {
        PowerModelBuilder::new()
    }

    /// Thermal time constant (0 = thermal model disabled).
    pub fn thermal_tau_s(&self) -> f64 {
        self.thermal_tau_s
    }

    /// Junction-to-ambient thermal resistance, °C/W.
    pub fn thermal_resistance_c_per_w(&self) -> f64 {
        self.thermal_resistance_c_per_w
    }

    /// Ambient temperature, °C.
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// Steady-state die temperature at a given package power.
    pub fn steady_temp_c(&self, package_w: f64) -> f64 {
        self.ambient_c + self.thermal_resistance_c_per_w * package_w
    }

    /// Extra leakage drawn at `temp_c`, relative to the reference
    /// temperature `ref_c` (typically the idle steady state).
    pub fn thermal_leakage_w(&self, temp_c: f64, ref_c: f64) -> f64 {
        if self.thermal_tau_s <= 0.0 {
            return 0.0;
        }
        self.thermal_leak_w_per_c * (temp_c - ref_c)
    }

    /// Machine power when completely idle (all cores in `deepest`).
    pub fn idle_machine_power(&self, cores: usize, deepest: &CState) -> Watts {
        Watts(
            self.platform_idle_w
                + self.package_idle_w
                + cores as f64 * self.core_c0_idle_w * deepest.power_fraction(),
        )
    }

    /// Computes the power drawn over one slice given per-core activity.
    pub fn slice_power(&self, cores: &[CoreSlice], dt: Nanos) -> PowerBreakdown {
        let dt_s = dt.as_secs_f64().max(1e-12);
        let mut out = PowerBreakdown {
            platform: self.platform_idle_w,
            package_idle: self.package_idle_w,
            ..PowerBreakdown::default()
        };
        let mut any_core_active: f64 = 0.0;

        for core in cores {
            let b0 = core.thread_busy[0].clamp(0.0, 1.0);
            let b1 = core.thread_busy[1].clamp(0.0, 1.0);
            let primary = b0.max(b1);
            let secondary = b0.min(b1);
            any_core_active = any_core_active.max(primary);

            let v = core.pstate.voltage();
            let f = core.pstate.frequency().as_ghz();
            let baseline_full = self.core_baseline_w_per_ghz_v2 * v * v * f;
            out.core_baseline +=
                baseline_full * (primary + self.smt_second_thread_factor * secondary);

            // Idle residue: awake fraction of C0-idle plus parked fraction.
            let idle_frac = 1.0 - primary;
            out.core_idle += self.core_c0_idle_w * core.idle_state.power_fraction() * idle_frac;

            // Per-event energy, V²-scaled relative to vref.
            let vscale = (v / self.vref) * (v / self.vref);
            for delta in &core.deltas {
                let nj = self.energy_inst_nj * delta.instructions as f64
                    + self.energy_fp_extra_nj * delta.fp_instructions as f64
                    + self.energy_branch_miss_nj * delta.branch_misses as f64
                    + self.energy_llc_ref_nj * delta.cache_references as f64;
                out.core_events += nj * 1e-9 * vscale / dt_s;
                out.dram += self.energy_dram_nj * delta.cache_misses as f64 * 1e-9 / dt_s;
            }
        }

        out.uncore = self.uncore_active_w * any_core_active;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cstate::CStateMenu;
    use crate::freq::PState;
    use crate::units::MegaHertz;

    fn pstate(mhz: u32, v: f64) -> PState {
        PState::new(MegaHertz(mhz), v).unwrap()
    }

    fn idle_core(ps: PState) -> CoreSlice {
        CoreSlice {
            pstate: ps,
            thread_busy: [0.0, 0.0],
            deltas: [ExecDelta::zero(), ExecDelta::zero()],
            idle_state: CStateMenu::sandy_bridge().states()[2],
        }
    }

    fn busy_core(ps: PState, busy: [f64; 2], inst: u64) -> CoreSlice {
        let delta = ExecDelta {
            instructions: inst,
            cycles: inst,
            ..ExecDelta::zero()
        };
        CoreSlice {
            pstate: ps,
            thread_busy: busy,
            deltas: [
                if busy[0] > 0.0 {
                    delta
                } else {
                    ExecDelta::zero()
                },
                if busy[1] > 0.0 {
                    delta
                } else {
                    ExecDelta::zero()
                },
            ],
            idle_state: CStateMenu::sandy_bridge().states()[2],
        }
    }

    const DT: Nanos = Nanos(1_000_000_000);

    #[test]
    fn idle_machine_is_near_constant_floor() {
        let m = PowerModel::builder().build();
        let cores = vec![idle_core(pstate(1600, 0.85)), idle_core(pstate(1600, 0.85))];
        let p = m.slice_power(&cores, DT).machine();
        // 26 + 5.5 + 2 cores · 1.2 · 0.05 (C6) = 31.62 W — the paper's
        // 31.48 W constant is exactly this kind of floor.
        assert!((p.as_f64() - 31.62).abs() < 0.01, "idle = {p}");
        let quick = m.idle_machine_power(2, &CStateMenu::sandy_bridge().states()[2]);
        assert!((quick.as_f64() - p.as_f64()).abs() < 1e-9);
    }

    #[test]
    fn busy_core_draws_more_at_higher_frequency_and_voltage() {
        let m = PowerModel::builder().build();
        let lo = m
            .slice_power(&[busy_core(pstate(1600, 0.85), [1.0, 0.0], 1_000_000)], DT)
            .machine();
        let hi = m
            .slice_power(&[busy_core(pstate(3300, 1.05), [1.0, 0.0], 1_000_000)], DT)
            .machine();
        assert!(hi > lo);
        // V²f ratio ≈ (1.05/0.85)² · (3.3/1.6) ≈ 3.15 for the baseline term.
        let lo_base = m
            .slice_power(&[busy_core(pstate(1600, 0.85), [1.0, 0.0], 0)], DT)
            .core_baseline;
        let hi_base = m
            .slice_power(&[busy_core(pstate(3300, 1.05), [1.0, 0.0], 0)], DT)
            .core_baseline;
        assert!((hi_base / lo_base - 3.147).abs() < 0.01);
    }

    #[test]
    fn smt_second_thread_is_sub_additive() {
        let m = PowerModel::builder().build();
        let ps = pstate(3300, 1.05);
        let one = m
            .slice_power(&[busy_core(ps, [1.0, 0.0], 0)], DT)
            .core_baseline;
        let two = m
            .slice_power(&[busy_core(ps, [1.0, 1.0], 0)], DT)
            .core_baseline;
        assert!(two > one, "second thread costs something");
        assert!(two < 2.0 * one, "but far less than a second core");
        assert!((two / one - 1.25).abs() < 1e-9, "factor 0.25 exactly");
    }

    #[test]
    fn event_energy_scales_with_counts() {
        let m = PowerModel::builder().build();
        let ps = pstate(3300, 1.05);
        let few = m
            .slice_power(&[busy_core(ps, [1.0, 0.0], 1_000_000)], DT)
            .core_events;
        let many = m
            .slice_power(&[busy_core(ps, [1.0, 0.0], 10_000_000)], DT)
            .core_events;
        assert!((many / few - 10.0).abs() < 1e-6);
    }

    #[test]
    fn dram_power_separate_from_package() {
        let m = PowerModel::builder().build();
        let mut c = busy_core(pstate(3300, 1.05), [1.0, 0.0], 0);
        c.deltas[0].cache_misses = 100_000_000;
        let b = m.slice_power(&[c], DT);
        assert!(b.dram > 0.0);
        assert!(b.package().as_f64() < b.machine().as_f64() - b.platform);
        // 1e8 misses · 60 nJ over 1 s = 6 W.
        assert!((b.dram - 6.0).abs() < 1e-9);
    }

    #[test]
    fn full_load_i3_in_tdp_ballpark() {
        // Sanity: 2 cores × 2 threads fully busy at 3.3 GHz with a typical
        // compute instruction rate lands between idle and TDP+platform.
        let m = PowerModel::builder().build();
        let ps = pstate(3300, 1.05);
        let cores = vec![
            busy_core(ps, [1.0, 1.0], 8_000_000_000),
            busy_core(ps, [1.0, 1.0], 8_000_000_000),
        ];
        let p = m.slice_power(&cores, DT).machine().as_f64();
        assert!(p > 45.0 && p < 95.0, "full load machine power = {p} W");
        let pkg = m.slice_power(&cores, DT).package().as_f64();
        assert!(pkg < 65.0, "package below TDP: {pkg} W");
    }

    #[test]
    fn builder_setters_apply_and_clamp() {
        let m = PowerModel::builder()
            .platform_idle_w(10.0)
            .package_idle_w(2.0)
            .core_baseline_w_per_ghz_v2(1.0)
            .core_c0_idle_w(0.5)
            .smt_second_thread_factor(7.0) // clamped to 1
            .uncore_active_w(1.0)
            .energy_inst_nj(1.0)
            .energy_branch_miss_nj(1.0)
            .energy_llc_ref_nj(1.0)
            .energy_dram_nj(1.0)
            .vref(1.0)
            .build();
        let ps = pstate(1000, 1.0);
        let one = m
            .slice_power(
                &[CoreSlice {
                    pstate: ps,
                    thread_busy: [1.0, 1.0],
                    deltas: [ExecDelta::zero(), ExecDelta::zero()],
                    idle_state: CStateMenu::halt_only().states()[0],
                }],
                DT,
            )
            .core_baseline;
        // factor clamped to 1.0 → fully additive: 2 · 1 W.
        assert!((one - 2.0).abs() < 1e-9);
    }
}
