//! C-states: processor idle states. The paper's motivation section singles
//! them out ("lower the clock speed, turn off some units") — an idle core
//! parked in a deep C-state draws a small fraction of its C0 idle power,
//! at the cost of wakeup latency.

use crate::units::Nanos;
use crate::{Error, Result};

/// One idle state of a core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CState {
    name: &'static str,
    /// Fraction of the core's C0-idle power still drawn in this state.
    power_fraction: f64,
    /// Latency to wake back into C0.
    exit_latency: Nanos,
    /// Minimum residency for entering this state to pay off.
    target_residency: Nanos,
}

impl CState {
    /// Creates a C-state.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when `power_fraction` is outside `[0, 1]`.
    pub fn new(
        name: &'static str,
        power_fraction: f64,
        exit_latency: Nanos,
        target_residency: Nanos,
    ) -> Result<CState> {
        if !(0.0..=1.0).contains(&power_fraction) {
            return Err(Error::InvalidConfig(
                "c-state power fraction must be in [0, 1]",
            ));
        }
        Ok(CState {
            name,
            power_fraction,
            exit_latency,
            target_residency,
        })
    }

    /// Marketing name (`"C1"`, `"C6"`, …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Fraction of C0-idle power drawn while parked here.
    pub fn power_fraction(&self) -> f64 {
        self.power_fraction
    }

    /// Wakeup latency.
    pub fn exit_latency(&self) -> Nanos {
        self.exit_latency
    }

    /// Break-even residency.
    pub fn target_residency(&self) -> Nanos {
        self.target_residency
    }
}

/// The ordered menu of idle states a core supports (shallow → deep), plus
/// residency accounting per state.
#[derive(Debug, Clone, PartialEq)]
pub struct CStateMenu {
    states: Vec<CState>,
}

impl CStateMenu {
    /// Builds a menu; states must be ordered shallow→deep, i.e. strictly
    /// decreasing power fraction and non-decreasing exit latency.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for an empty or mis-ordered menu.
    pub fn new(states: Vec<CState>) -> Result<CStateMenu> {
        if states.is_empty() {
            return Err(Error::InvalidConfig("c-state menu must not be empty"));
        }
        for w in states.windows(2) {
            if w[1].power_fraction() >= w[0].power_fraction() {
                return Err(Error::InvalidConfig(
                    "c-state menu must strictly decrease in power",
                ));
            }
            if w[1].exit_latency() < w[0].exit_latency() {
                return Err(Error::InvalidConfig(
                    "deeper c-states cannot wake faster than shallow ones",
                ));
            }
        }
        Ok(CStateMenu { states })
    }

    /// The standard Sandy-Bridge-era menu: C1 (halt), C3, C6 (power gate).
    pub fn sandy_bridge() -> CStateMenu {
        CStateMenu::new(vec![
            CState::new("C1", 0.60, Nanos(2_000), Nanos(4_000)).expect("valid"),
            CState::new("C3", 0.25, Nanos(80_000), Nanos(200_000)).expect("valid"),
            CState::new("C6", 0.05, Nanos(110_000), Nanos(400_000)).expect("valid"),
        ])
        .expect("hardcoded menu is valid")
    }

    /// A menu with only C1 — for old parts without deep idle.
    pub fn halt_only() -> CStateMenu {
        CStateMenu::new(vec![
            CState::new("C1", 0.60, Nanos(2_000), Nanos(4_000)).expect("valid")
        ])
        .expect("hardcoded menu is valid")
    }

    /// All states, shallow → deep.
    pub fn states(&self) -> &[CState] {
        &self.states
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Always false (menus are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Picks the deepest state whose target residency fits the predicted
    /// idle duration — a simplified Linux *menu* governor decision.
    pub fn pick(&self, predicted_idle: Nanos) -> CState {
        let mut chosen = self.states[0];
        for s in &self.states {
            if s.target_residency() <= predicted_idle {
                chosen = *s;
            }
        }
        chosen
    }
}

/// Per-core residency bookkeeping: nanoseconds spent in C0 (busy), C0-idle
/// (awake but no work) and each deeper state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Residency {
    busy: Nanos,
    idle: Vec<(String, Nanos)>,
}

impl Residency {
    /// Empty residency record.
    pub fn new() -> Residency {
        Residency::default()
    }

    /// Accounts busy (C0, executing) time.
    pub fn add_busy(&mut self, dt: Nanos) {
        self.busy += dt;
    }

    /// Accounts time parked in `state`.
    pub fn add_idle(&mut self, state: &CState, dt: Nanos) {
        if let Some(slot) = self.idle.iter_mut().find(|(n, _)| n == state.name()) {
            slot.1 += dt;
        } else {
            self.idle.push((state.name().to_string(), dt));
        }
    }

    /// Total busy (C0-executing) time.
    pub fn busy(&self) -> Nanos {
        self.busy
    }

    /// Time in a named idle state (zero when never entered).
    pub fn in_state(&self, name: &str) -> Nanos {
        self.idle
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
            .unwrap_or(Nanos::ZERO)
    }

    /// Total idle time across all states.
    pub fn total_idle(&self) -> Nanos {
        Nanos(self.idle.iter().map(|(_, t)| t.as_u64()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cstate_validation() {
        assert!(CState::new("Cx", 1.5, Nanos(1), Nanos(1)).is_err());
        assert!(CState::new("Cx", -0.1, Nanos(1), Nanos(1)).is_err());
        assert!(CState::new("Cx", 0.5, Nanos(1), Nanos(1)).is_ok());
    }

    #[test]
    fn menu_ordering_enforced() {
        let asc = vec![
            CState::new("C1", 0.2, Nanos(1), Nanos(1)).unwrap(),
            CState::new("C3", 0.5, Nanos(10), Nanos(10)).unwrap(),
        ];
        assert!(CStateMenu::new(asc).is_err());
        let latency_backwards = vec![
            CState::new("C1", 0.6, Nanos(100), Nanos(100)).unwrap(),
            CState::new("C3", 0.2, Nanos(10), Nanos(200)).unwrap(),
        ];
        assert!(CStateMenu::new(latency_backwards).is_err());
        assert!(CStateMenu::new(Vec::new()).is_err());
    }

    #[test]
    fn sandy_bridge_menu_sane() {
        let m = CStateMenu::sandy_bridge();
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.states()[0].name(), "C1");
        assert_eq!(m.states()[2].name(), "C6");
        assert!(m.states()[2].power_fraction() < m.states()[0].power_fraction());
    }

    #[test]
    fn pick_matches_predicted_idle() {
        let m = CStateMenu::sandy_bridge();
        // Very short idle: stay shallow.
        assert_eq!(m.pick(Nanos(1_000)).name(), "C1");
        // Medium idle: C3 pays off.
        assert_eq!(m.pick(Nanos(250_000)).name(), "C3");
        // Long idle: deepest.
        assert_eq!(m.pick(Nanos::from_millis(5)).name(), "C6");
    }

    #[test]
    fn residency_accumulates() {
        let m = CStateMenu::sandy_bridge();
        let mut r = Residency::new();
        r.add_busy(Nanos(500));
        r.add_busy(Nanos(250));
        r.add_idle(&m.states()[0], Nanos(100));
        r.add_idle(&m.states()[2], Nanos(1_000));
        r.add_idle(&m.states()[0], Nanos(50));
        assert_eq!(r.busy(), Nanos(750));
        assert_eq!(r.in_state("C1"), Nanos(150));
        assert_eq!(r.in_state("C6"), Nanos(1_000));
        assert_eq!(r.in_state("C3"), Nanos::ZERO);
        assert_eq!(r.total_idle(), Nanos(1_150));
    }
}
