use crate::units::{CpuId, MegaHertz};
use std::fmt;

/// Error type for fallible `simcpu` operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A logical CPU index was out of range for the machine's topology.
    NoSuchCpu {
        /// The offending index.
        cpu: CpuId,
        /// Number of logical CPUs the machine has.
        available: usize,
    },
    /// A frequency not present in the P-state table was requested.
    UnsupportedFrequency {
        /// The requested frequency.
        requested: MegaHertz,
    },
    /// A configuration value was invalid (message explains which).
    InvalidConfig(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoSuchCpu { cpu, available } => {
                write!(f, "no such cpu {cpu}: machine has {available} logical cpus")
            }
            Error::UnsupportedFrequency { requested } => {
                write!(f, "frequency {requested} is not in the p-state table")
            }
            Error::InvalidConfig(msg) => write!(f, "invalid machine config: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errors = [
            Error::NoSuchCpu {
                cpu: CpuId(9),
                available: 4,
            },
            Error::UnsupportedFrequency {
                requested: MegaHertz(1234),
            },
            Error::InvalidConfig("threads_per_core must be 1 or 2"),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Error>();
    }
}
