//! The execution engine: turns (work unit, frequency, SMT contention,
//! slice duration) into retired-event counts. This is where the simulated
//! microarchitecture lives — IPC derivation, cache/branch stalls, the
//! memory wall, and HyperThread pipeline sharing.

use crate::cache::CacheHierarchy;
use crate::counters::ExecDelta;
use crate::freq::PState;
use crate::units::{MegaHertz, Nanos};
use crate::workunit::WorkUnit;

/// Fraction of memory latency hidden by out-of-order overlap.
const MEMORY_OVERLAP: f64 = 0.6;

/// Pipeline flush penalty for a mispredicted branch, in cycles.
const BRANCH_FLUSH_CYCLES: f64 = 15.0;

/// Per-thread base-IPC multiplier when the SMT sibling is also executing:
/// two threads share one pipeline, each getting ~62 % of its solo issue
/// bandwidth (≈1.24× combined — the classic HyperThreading figure).
const SMT_SHARE: f64 = 0.62;

/// Context for executing one slice on one hardware thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecContext {
    /// Operating point of the core (frequency + voltage).
    pub pstate: PState,
    /// Reference clock used by the `ref-cycles` counter.
    pub reference_clock: MegaHertz,
    /// Whether the SMT sibling thread is executing during this slice.
    pub sibling_active: bool,
}

/// Outcome of executing a slice: the retired events plus derived
/// quantities the power model needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecOutcome {
    /// Retired hardware events for the slice.
    pub delta: ExecDelta,
    /// Fraction of the slice the thread was actually executing (C0-busy).
    pub busy_fraction: f64,
    /// Effective instructions per (busy) cycle achieved.
    pub achieved_ipc: f64,
}

/// Executes `work` for `dt` on a hardware thread and returns the retired
/// events.
///
/// The model:
/// 1. busy cycles = `intensity · f · dt`;
/// 2. CPI = 1/IPC_base′ + memory stalls + branch stalls, with IPC_base′
///    reduced by the SMT sharing factor when the sibling is active;
/// 3. retired instructions = busy cycles / CPI; event counts follow from
///    the instruction mix and the cache [`AccessProfile`].
///
/// [`AccessProfile`]: crate::cache::AccessProfile
pub fn execute(
    work: &WorkUnit,
    ctx: &ExecContext,
    caches: &CacheHierarchy,
    dt: Nanos,
) -> ExecOutcome {
    let intensity = work.intensity();
    if intensity <= 0.0 || dt == Nanos::ZERO {
        return ExecOutcome {
            delta: ExecDelta::zero(),
            busy_fraction: 0.0,
            achieved_ipc: 0.0,
        };
    }

    let freq = ctx.pstate.frequency();
    let ghz = freq.as_ghz();
    let total_cycles = freq.cycles_over(dt) as f64;
    let busy_cycles = total_cycles * intensity;

    // Cache behaviour of this working set. An active SMT sibling
    // effectively halves the private cache capacity available.
    let effective_footprint = if ctx.sibling_active {
        work.footprint_kb() * 1.35
    } else {
        work.footprint_kb()
    };
    let profile = caches.profile(effective_footprint, work.locality());

    // CPI decomposition.
    let base_ipc = if ctx.sibling_active {
        work.base_ipc() * SMT_SHARE
    } else {
        work.base_ipc()
    };
    let mem_stall_per_inst =
        work.mem_ratio() * profile.stall_cycles_per_access(caches, ghz, MEMORY_OVERLAP);
    let branch_stall_per_inst = work.branch_ratio() * work.branch_miss_rate() * BRANCH_FLUSH_CYCLES;
    let cpi = 1.0 / base_ipc + mem_stall_per_inst + branch_stall_per_inst;

    let instructions = busy_cycles / cpi;
    let mem_accesses = instructions * work.mem_ratio();
    let branches = instructions * work.branch_ratio();

    let delta = ExecDelta {
        cycles: busy_cycles as u64,
        ref_cycles: (ctx.reference_clock.cycles_over(dt) as f64 * intensity) as u64,
        instructions: instructions as u64,
        cache_references: (mem_accesses * profile.llc_reference_rate()) as u64,
        cache_misses: (mem_accesses * profile.llc_miss_rate()) as u64,
        branch_instructions: branches as u64,
        branch_misses: (branches * work.branch_miss_rate()) as u64,
        bus_cycles: (busy_cycles * 0.1) as u64,
        stalled_cycles_frontend: (instructions * branch_stall_per_inst) as u64,
        stalled_cycles_backend: (instructions * mem_stall_per_inst) as u64,
        l1d_accesses: mem_accesses as u64,
        l1d_misses: (mem_accesses * profile.l1_miss) as u64,
        fp_instructions: (instructions * work.fp_ratio()) as u64,
    };

    ExecOutcome {
        delta,
        busy_fraction: intensity,
        achieved_ipc: instructions / busy_cycles.max(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::PState;

    fn caches() -> CacheHierarchy {
        CacheHierarchy::new(32, 256, 3072).unwrap()
    }

    fn ctx(mhz: u32, sibling: bool) -> ExecContext {
        ExecContext {
            pstate: PState::new(MegaHertz(mhz), 1.0).unwrap(),
            reference_clock: MegaHertz(3300),
            sibling_active: sibling,
        }
    }

    const MS: Nanos = Nanos(1_000_000);

    #[test]
    fn zero_intensity_and_zero_dt_do_nothing() {
        let w = WorkUnit::cpu_intensive(0.0);
        let out = execute(&w, &ctx(3300, false), &caches(), MS);
        assert!(out.delta.is_zero());
        assert_eq!(out.busy_fraction, 0.0);
        let w = WorkUnit::cpu_intensive(1.0);
        let out = execute(&w, &ctx(3300, false), &caches(), Nanos::ZERO);
        assert!(out.delta.is_zero());
    }

    #[test]
    fn cpu_bound_scales_with_frequency() {
        let w = WorkUnit::cpu_intensive(1.0);
        let slow = execute(&w, &ctx(1600, false), &caches(), MS);
        let fast = execute(&w, &ctx(3300, false), &caches(), MS);
        let ratio = fast.delta.instructions as f64 / slow.delta.instructions as f64;
        // Compute-bound: near-perfect frequency scaling (3300/1600 = 2.06).
        assert!((ratio - 3300.0 / 1600.0).abs() < 0.05, "ratio={ratio}");
    }

    #[test]
    fn memory_bound_scales_sublinearly() {
        let w = WorkUnit::memory_intensive(131_072.0, 1.0);
        let slow = execute(&w, &ctx(1600, false), &caches(), MS);
        let fast = execute(&w, &ctx(3300, false), &caches(), MS);
        let ratio = fast.delta.instructions as f64 / slow.delta.instructions as f64;
        assert!(
            ratio < 1.6,
            "memory wall limits frequency scaling, got {ratio}"
        );
        assert!(ratio > 1.0, "higher clock still helps a little");
    }

    #[test]
    fn counters_respect_mix_identities() {
        let w = WorkUnit::mixed(0.5, 4096.0, 1.0);
        let out = execute(&w, &ctx(3300, false), &caches(), MS).delta;
        let inst = out.instructions as f64;
        assert!(inst > 0.0);
        // Branches ≈ branch_ratio · instructions.
        let br = out.branch_instructions as f64 / inst;
        assert!((br - w.branch_ratio()).abs() < 0.01);
        // Chain: accesses ≥ L1 misses ≥ LLC refs ≥ LLC misses.
        assert!(out.l1d_accesses >= out.l1d_misses);
        assert!(out.l1d_misses >= out.cache_references);
        assert!(out.cache_references >= out.cache_misses);
        // Branch misses bounded by branches.
        assert!(out.branch_misses <= out.branch_instructions);
        // Cycles for the slice at 3.3 GHz over 1 ms.
        assert_eq!(out.cycles, 3_300_000);
    }

    #[test]
    fn memory_workload_produces_llc_traffic() {
        let w = WorkUnit::memory_intensive(65536.0, 1.0);
        let out = execute(&w, &ctx(3300, false), &caches(), MS).delta;
        assert!(out.cache_references > 0);
        assert!(out.cache_misses > 0);
        let cpu = WorkUnit::cpu_intensive(1.0);
        let cpu_out = execute(&cpu, &ctx(3300, false), &caches(), MS).delta;
        assert!(
            out.cache_misses > cpu_out.cache_misses * 10,
            "memory workload misses ({}) must dwarf compute workload misses ({})",
            out.cache_misses,
            cpu_out.cache_misses
        );
    }

    #[test]
    fn smt_sibling_lowers_per_thread_throughput() {
        let w = WorkUnit::cpu_intensive(1.0);
        let solo = execute(&w, &ctx(3300, false), &caches(), MS);
        let shared = execute(&w, &ctx(3300, true), &caches(), MS);
        let per_thread = shared.delta.instructions as f64 / solo.delta.instructions as f64;
        assert!(
            per_thread < 0.75,
            "sibling steals issue slots: {per_thread}"
        );
        // But combined throughput of two threads beats one.
        assert!(2.0 * per_thread > 1.1, "SMT still a net win: {per_thread}");
    }

    #[test]
    fn intensity_scales_events_linearly() {
        let full = execute(
            &WorkUnit::cpu_intensive(1.0),
            &ctx(3300, false),
            &caches(),
            MS,
        );
        let half = execute(
            &WorkUnit::cpu_intensive(0.5),
            &ctx(3300, false),
            &caches(),
            MS,
        );
        let r = half.delta.instructions as f64 / full.delta.instructions as f64;
        assert!((r - 0.5).abs() < 0.01, "r={r}");
        assert_eq!(half.busy_fraction, 0.5);
    }

    #[test]
    fn achieved_ipc_below_base() {
        let w = WorkUnit::memory_intensive(65536.0, 1.0);
        let out = execute(&w, &ctx(3300, false), &caches(), MS);
        assert!(out.achieved_ipc < w.base_ipc());
        assert!(out.achieved_ipc > 0.0);
    }
}
