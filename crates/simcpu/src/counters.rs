//! Hardware performance counter state. Each logical CPU owns a
//! monotonically increasing [`CounterBank`]; execution produces
//! [`ExecDelta`]s that are folded into the bank and also handed to the OS
//! layer so counters can be attributed to the software thread that was
//! running (which is how `perf` semantics work on real kernels).

use std::ops::{Add, AddAssign};

/// The hardware events the simulated PMU exposes. This is the generic set
/// from the `perf_event_open(2)` man page the paper cites, plus the
/// L1-data-cache pair needed for architecture-specific events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum HwCounter {
    /// Core clock cycles while executing (halted cycles do not count).
    Cycles,
    /// Reference (TSC-rate) cycles while executing.
    RefCycles,
    /// Retired instructions.
    Instructions,
    /// Last-level-cache references (`cache-references` in perf terms).
    CacheReferences,
    /// Last-level-cache misses (`cache-misses` in perf terms).
    CacheMisses,
    /// Retired branch instructions.
    BranchInstructions,
    /// Mispredicted branches.
    BranchMisses,
    /// Bus/uncore cycles.
    BusCycles,
    /// Cycles the frontend was stalled (branch flushes).
    StalledCyclesFrontend,
    /// Cycles the backend was stalled (memory waits).
    StalledCyclesBackend,
    /// L1 data cache accesses.
    L1dAccesses,
    /// L1 data cache misses.
    L1dMisses,
}

impl HwCounter {
    /// Every counter, in a stable order.
    pub const ALL: [HwCounter; 12] = [
        HwCounter::Cycles,
        HwCounter::RefCycles,
        HwCounter::Instructions,
        HwCounter::CacheReferences,
        HwCounter::CacheMisses,
        HwCounter::BranchInstructions,
        HwCounter::BranchMisses,
        HwCounter::BusCycles,
        HwCounter::StalledCyclesFrontend,
        HwCounter::StalledCyclesBackend,
        HwCounter::L1dAccesses,
        HwCounter::L1dMisses,
    ];

    /// The perf-tool-style event name.
    pub fn name(self) -> &'static str {
        match self {
            HwCounter::Cycles => "cycles",
            HwCounter::RefCycles => "ref-cycles",
            HwCounter::Instructions => "instructions",
            HwCounter::CacheReferences => "cache-references",
            HwCounter::CacheMisses => "cache-misses",
            HwCounter::BranchInstructions => "branch-instructions",
            HwCounter::BranchMisses => "branch-misses",
            HwCounter::BusCycles => "bus-cycles",
            HwCounter::StalledCyclesFrontend => "stalled-cycles-frontend",
            HwCounter::StalledCyclesBackend => "stalled-cycles-backend",
            HwCounter::L1dAccesses => "L1-dcache-loads",
            HwCounter::L1dMisses => "L1-dcache-load-misses",
        }
    }
}

impl std::fmt::Display for HwCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Event counts produced by one execution slice on one logical CPU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecDelta {
    /// Core cycles spent executing.
    pub cycles: u64,
    /// Reference cycles spent executing.
    pub ref_cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// LLC references.
    pub cache_references: u64,
    /// LLC misses.
    pub cache_misses: u64,
    /// Branches retired.
    pub branch_instructions: u64,
    /// Branches mispredicted.
    pub branch_misses: u64,
    /// Bus cycles.
    pub bus_cycles: u64,
    /// Frontend stall cycles.
    pub stalled_cycles_frontend: u64,
    /// Backend stall cycles.
    pub stalled_cycles_backend: u64,
    /// L1D accesses.
    pub l1d_accesses: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// Retired floating-point instructions. Deliberately **not** part of
    /// the generic counter set ([`HwCounter::ALL`]): on real PMUs FP
    /// counters are architecture-specific raw events, so a generic-counter
    /// power model is blind to FP energy — one of the error sources the
    /// paper's 15 % median error hides.
    pub fp_instructions: u64,
}

impl ExecDelta {
    /// The all-zero delta (an idle slice).
    pub fn zero() -> ExecDelta {
        ExecDelta::default()
    }

    /// Reads one event's count.
    pub fn get(&self, c: HwCounter) -> u64 {
        match c {
            HwCounter::Cycles => self.cycles,
            HwCounter::RefCycles => self.ref_cycles,
            HwCounter::Instructions => self.instructions,
            HwCounter::CacheReferences => self.cache_references,
            HwCounter::CacheMisses => self.cache_misses,
            HwCounter::BranchInstructions => self.branch_instructions,
            HwCounter::BranchMisses => self.branch_misses,
            HwCounter::BusCycles => self.bus_cycles,
            HwCounter::StalledCyclesFrontend => self.stalled_cycles_frontend,
            HwCounter::StalledCyclesBackend => self.stalled_cycles_backend,
            HwCounter::L1dAccesses => self.l1d_accesses,
            HwCounter::L1dMisses => self.l1d_misses,
        }
    }

    /// True when every event is zero.
    pub fn is_zero(&self) -> bool {
        HwCounter::ALL.iter().all(|&c| self.get(c) == 0) && self.fp_instructions == 0
    }
}

impl Add for ExecDelta {
    type Output = ExecDelta;
    fn add(mut self, rhs: ExecDelta) -> ExecDelta {
        self += rhs;
        self
    }
}

impl AddAssign for ExecDelta {
    fn add_assign(&mut self, rhs: ExecDelta) {
        self.cycles += rhs.cycles;
        self.ref_cycles += rhs.ref_cycles;
        self.instructions += rhs.instructions;
        self.cache_references += rhs.cache_references;
        self.cache_misses += rhs.cache_misses;
        self.branch_instructions += rhs.branch_instructions;
        self.branch_misses += rhs.branch_misses;
        self.bus_cycles += rhs.bus_cycles;
        self.stalled_cycles_frontend += rhs.stalled_cycles_frontend;
        self.stalled_cycles_backend += rhs.stalled_cycles_backend;
        self.l1d_accesses += rhs.l1d_accesses;
        self.l1d_misses += rhs.l1d_misses;
        self.fp_instructions += rhs.fp_instructions;
    }
}

/// Cumulative (since machine construction) counters for one logical CPU.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterBank {
    total: ExecDelta,
}

impl CounterBank {
    /// A fresh, zeroed bank.
    pub fn new() -> CounterBank {
        CounterBank::default()
    }

    /// Folds an execution slice into the cumulative totals.
    pub fn apply(&mut self, delta: &ExecDelta) {
        self.total += *delta;
    }

    /// Cumulative value of one event.
    pub fn read(&self, c: HwCounter) -> u64 {
        self.total.get(c)
    }

    /// The whole cumulative record.
    pub fn snapshot(&self) -> ExecDelta {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecDelta {
        ExecDelta {
            cycles: 100,
            ref_cycles: 90,
            instructions: 150,
            cache_references: 10,
            cache_misses: 2,
            branch_instructions: 30,
            branch_misses: 1,
            bus_cycles: 9,
            stalled_cycles_frontend: 5,
            stalled_cycles_backend: 20,
            l1d_accesses: 50,
            l1d_misses: 12,
            fp_instructions: 40,
        }
    }

    #[test]
    fn names_unique_and_nonempty() {
        let mut names: Vec<&str> = HwCounter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate counter names");
        assert!(names.iter().all(|n| !n.is_empty()));
    }

    #[test]
    fn get_covers_all_fields() {
        let d = sample();
        // Summing via the accessor must equal summing the struct fields.
        let via_get: u64 = HwCounter::ALL.iter().map(|&c| d.get(c)).sum();
        assert_eq!(
            via_get,
            100 + 90 + 150 + 10 + 2 + 30 + 1 + 9 + 5 + 20 + 50 + 12
        );
    }

    #[test]
    fn add_and_is_zero() {
        let d = sample();
        assert!(!d.is_zero());
        assert!(ExecDelta::zero().is_zero());
        let sum = d + d;
        assert_eq!(sum.instructions, 300);
        assert_eq!(sum.cache_misses, 4);
    }

    #[test]
    fn bank_accumulates_monotonically() {
        let mut bank = CounterBank::new();
        assert_eq!(bank.read(HwCounter::Instructions), 0);
        bank.apply(&sample());
        bank.apply(&sample());
        assert_eq!(bank.read(HwCounter::Instructions), 300);
        assert_eq!(bank.read(HwCounter::Cycles), 200);
        assert_eq!(bank.snapshot().l1d_misses, 24);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(HwCounter::CacheMisses.to_string(), "cache-misses");
    }
}
