//! CPU topology: packages → cores → SMT threads, with logical-CPU
//! enumeration matching the Linux convention (`cpu = core * smt + thread`
//! within a package).

use crate::units::CpuId;
use crate::{Error, Result};

/// Identifies a physical core (package-global index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

impl CoreId {
    /// Raw index.
    pub fn as_usize(self) -> usize {
        self.0
    }
}

/// Immutable description of a machine's CPU layout.
///
/// ```
/// use simcpu::topology::Topology;
///
/// # fn main() -> Result<(), simcpu::Error> {
/// // i3-2120: 1 package × 2 cores × 2 SMT threads = 4 logical CPUs.
/// let topo = Topology::new(1, 2, 2)?;
/// assert_eq!(topo.logical_cpus(), 4);
/// assert_eq!(topo.physical_cores(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    packages: usize,
    cores_per_package: usize,
    threads_per_core: usize,
}

impl Topology {
    /// Creates a topology.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when any dimension is zero or
    /// `threads_per_core` exceeds 2 (the SMT model covers 2-way
    /// HyperThreading, as on every machine in the paper).
    pub fn new(
        packages: usize,
        cores_per_package: usize,
        threads_per_core: usize,
    ) -> Result<Topology> {
        if packages == 0 || cores_per_package == 0 || threads_per_core == 0 {
            return Err(Error::InvalidConfig("topology dimensions must be non-zero"));
        }
        if threads_per_core > 2 {
            return Err(Error::InvalidConfig("threads_per_core must be 1 or 2"));
        }
        Ok(Topology {
            packages,
            cores_per_package,
            threads_per_core,
        })
    }

    /// Number of packages (sockets).
    pub fn packages(&self) -> usize {
        self.packages
    }

    /// Physical cores across all packages.
    pub fn physical_cores(&self) -> usize {
        self.packages * self.cores_per_package
    }

    /// SMT width (1 = no HyperThreading, 2 = HyperThreading).
    pub fn threads_per_core(&self) -> usize {
        self.threads_per_core
    }

    /// Whether the topology has SMT siblings.
    pub fn has_smt(&self) -> bool {
        self.threads_per_core > 1
    }

    /// Total logical CPUs (hardware threads).
    pub fn logical_cpus(&self) -> usize {
        self.physical_cores() * self.threads_per_core
    }

    /// The physical core a logical CPU belongs to.
    ///
    /// # Errors
    ///
    /// [`Error::NoSuchCpu`] for out-of-range indices.
    pub fn core_of(&self, cpu: CpuId) -> Result<CoreId> {
        self.check(cpu)?;
        Ok(CoreId(cpu.0 / self.threads_per_core))
    }

    /// The logical CPUs on a core (the SMT sibling set).
    ///
    /// # Panics
    ///
    /// Panics when `core` is out of range.
    pub fn threads_of(&self, core: CoreId) -> Vec<CpuId> {
        assert!(
            core.0 < self.physical_cores(),
            "core {} out of range ({})",
            core.0,
            self.physical_cores()
        );
        (0..self.threads_per_core)
            .map(|t| CpuId(core.0 * self.threads_per_core + t))
            .collect()
    }

    /// The SMT sibling of a logical CPU (`None` without SMT).
    ///
    /// # Errors
    ///
    /// [`Error::NoSuchCpu`] for out-of-range indices.
    pub fn sibling_of(&self, cpu: CpuId) -> Result<Option<CpuId>> {
        self.check(cpu)?;
        if self.threads_per_core == 1 {
            return Ok(None);
        }
        let base = (cpu.0 / 2) * 2;
        Ok(Some(CpuId(base + (1 - (cpu.0 - base)))))
    }

    /// Iterates over every logical CPU id.
    pub fn cpus(&self) -> impl Iterator<Item = CpuId> {
        (0..self.logical_cpus()).map(CpuId)
    }

    /// Iterates over every physical core id.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.physical_cores()).map(CoreId)
    }

    fn check(&self, cpu: CpuId) -> Result<()> {
        if cpu.0 >= self.logical_cpus() {
            return Err(Error::NoSuchCpu {
                cpu,
                available: self.logical_cpus(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_configs() {
        assert!(Topology::new(0, 2, 2).is_err());
        assert!(Topology::new(1, 0, 2).is_err());
        assert!(Topology::new(1, 2, 0).is_err());
        assert!(Topology::new(1, 2, 4).is_err());
    }

    #[test]
    fn i3_layout() {
        let t = Topology::new(1, 2, 2).unwrap();
        assert_eq!(t.logical_cpus(), 4);
        assert_eq!(t.physical_cores(), 2);
        assert!(t.has_smt());
        assert_eq!(t.core_of(CpuId(0)).unwrap(), CoreId(0));
        assert_eq!(t.core_of(CpuId(1)).unwrap(), CoreId(0));
        assert_eq!(t.core_of(CpuId(2)).unwrap(), CoreId(1));
        assert_eq!(t.core_of(CpuId(3)).unwrap(), CoreId(1));
    }

    #[test]
    fn siblings_pair_up() {
        let t = Topology::new(1, 2, 2).unwrap();
        assert_eq!(t.sibling_of(CpuId(0)).unwrap(), Some(CpuId(1)));
        assert_eq!(t.sibling_of(CpuId(1)).unwrap(), Some(CpuId(0)));
        assert_eq!(t.sibling_of(CpuId(3)).unwrap(), Some(CpuId(2)));
        assert_eq!(t.threads_of(CoreId(1)), vec![CpuId(2), CpuId(3)]);
    }

    #[test]
    fn no_smt_has_no_sibling() {
        let t = Topology::new(1, 2, 1).unwrap();
        assert!(!t.has_smt());
        assert_eq!(t.sibling_of(CpuId(0)).unwrap(), None);
        assert_eq!(t.threads_of(CoreId(1)), vec![CpuId(1)]);
    }

    #[test]
    fn out_of_range_rejected() {
        let t = Topology::new(1, 2, 2).unwrap();
        assert!(matches!(t.core_of(CpuId(4)), Err(Error::NoSuchCpu { .. })));
        assert!(t.sibling_of(CpuId(99)).is_err());
    }

    #[test]
    fn multi_package_counts() {
        let t = Topology::new(2, 4, 2).unwrap();
        assert_eq!(t.logical_cpus(), 16);
        assert_eq!(t.physical_cores(), 8);
        assert_eq!(t.cpus().count(), 16);
        assert_eq!(t.cores().count(), 8);
    }
}
