//! # simcpu
//!
//! A cycle-approximate multi-core CPU and machine simulator: the "Machine /
//! CPU" box of the paper's Figure 1. It stands in for the physical Intel
//! Core i3-2120 testbed (and the comparison machines) that the original
//! work measured with a PowerSpy meter.
//!
//! The simulator models the architectural features the paper calls out:
//!
//! * **multi-core topology** with **SMT** (HyperThreading) sibling threads
//!   sharing a core's pipeline and caches;
//! * **DVFS** (SpeedStep): per-core P-states with a frequency/voltage table;
//! * **TurboBoost**: opportunistic frequency bins that depend on how many
//!   cores are active (disabled on the i3-2120 preset, as in Table 1);
//! * **C-states**: idle states with distinct power levels and residencies;
//! * a three-level **cache hierarchy** whose miss behaviour is driven by
//!   each workload's footprint and locality;
//! * **hardware performance counters** per logical CPU (instructions,
//!   cycles, cache references/misses, branches, …).
//!
//! Crucially, the machine contains a **hidden ground-truth power model**
//! ([`power::PowerModel`]) combining leakage, per-core `C·V²·f` dynamic
//! power, per-event energies, uncore activity and SMT sharing. Client
//! crates (the power-model learner, the meter, RAPL) only observe counters
//! and watts — never the model itself — exactly like software on real
//! hardware.
//!
//! ```
//! use simcpu::machine::Machine;
//! use simcpu::presets;
//! use simcpu::workunit::WorkUnit;
//!
//! let mut machine = Machine::new(presets::intel_i3_2120());
//! let cpu_bound = WorkUnit::cpu_intensive(1.0);
//! // Run the work on logical CPU 0 for one millisecond; others idle.
//! let report = machine.tick(&[Some(&cpu_bound), None, None, None], 1_000_000);
//! assert!(report.power.as_f64() > 0.0);
//! assert!(report.deltas[0].instructions > 0);
//! assert_eq!(report.deltas[1].instructions, 0);
//! ```

pub mod cache;
pub mod counters;
pub mod cstate;
pub mod exec;
pub mod fault;
pub mod freq;
pub mod machine;
pub mod power;
pub mod presets;
pub mod topology;
pub mod units;
pub mod workunit;

mod error;

pub use error::Error;
pub use machine::{Machine, TickReport};
pub use units::{CpuId, Joules, MegaHertz, Nanos, Watts};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;
