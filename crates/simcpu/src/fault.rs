//! Deterministic fault injection: a seeded schedule of fault windows the
//! measurement substrates consume. Real counter-based power monitors face
//! meter disconnects, sampling gaps and counter glitches; this module
//! makes every such failure mode reproducible from a `u64` seed, like the
//! rest of the simulation.
//!
//! A [`FaultPlan`] is a sorted list of [`FaultWindow`]s. Producers of
//! faults ([`FaultPlan::generate`]) and consumers (`powermeter::powerspy`,
//! `perf-sim`'s session) never share RNG state: a window is active purely
//! as a function of simulated time, so two components replaying the same
//! plan observe the same faults regardless of call order or thread count.

use crate::units::Nanos;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injectable failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// Meter: completed samples inside the window are silently dropped.
    SampleDropout,
    /// Meter: emitted frames are corrupted in transit (fail checksum).
    FrameCorruption,
    /// Meter: noise standard deviation is multiplied by `magnitude`.
    NoiseBurst,
    /// Meter: full disconnect — nothing is emitted and the integration
    /// window restarts from scratch on reconnect.
    Disconnect,
    /// Counters: affected counters stop accumulating (PMU stall); their
    /// `time_running` freezes while `time_enabled` keeps advancing, so
    /// multiplex scaling partially compensates.
    CounterStall,
    /// Counters: values spuriously reset to zero at window entry, as if
    /// `PERF_EVENT_IOC_RESET` fired behind the session's back.
    SpuriousReset,
    /// Counters: PMU slots are revoked mid-interval (e.g. claimed by a
    /// watchdog); effective slot budget drops by `magnitude` slots.
    SlotRevocation,
    /// Middleware: a supervised actor is told to panic once inside the
    /// window (exercises restart policies end to end).
    ActorPanic,
}

impl FaultKind {
    /// Every kind, in declaration order.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::SampleDropout,
        FaultKind::FrameCorruption,
        FaultKind::NoiseBurst,
        FaultKind::Disconnect,
        FaultKind::CounterStall,
        FaultKind::SpuriousReset,
        FaultKind::SlotRevocation,
        FaultKind::ActorPanic,
    ];

    /// Whether the kind targets the power meter.
    pub fn is_meter(self) -> bool {
        matches!(
            self,
            FaultKind::SampleDropout
                | FaultKind::FrameCorruption
                | FaultKind::NoiseBurst
                | FaultKind::Disconnect
        )
    }

    /// Whether the kind targets the perf counters.
    pub fn is_counter(self) -> bool {
        matches!(
            self,
            FaultKind::CounterStall | FaultKind::SpuriousReset | FaultKind::SlotRevocation
        )
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FaultKind::SampleDropout => "sample-dropout",
            FaultKind::FrameCorruption => "frame-corruption",
            FaultKind::NoiseBurst => "noise-burst",
            FaultKind::Disconnect => "disconnect",
            FaultKind::CounterStall => "counter-stall",
            FaultKind::SpuriousReset => "spurious-reset",
            FaultKind::SlotRevocation => "slot-revocation",
            FaultKind::ActorPanic => "actor-panic",
        };
        f.write_str(name)
    }
}

/// One scheduled fault: `kind` is active for `start <= t < end`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// The failure mode.
    pub kind: FaultKind,
    /// Window start (inclusive).
    pub start: Nanos,
    /// Window end (exclusive).
    pub end: Nanos,
    /// Kind-specific intensity: noise multiplier for [`FaultKind::NoiseBurst`],
    /// slots revoked for [`FaultKind::SlotRevocation`], unused otherwise.
    pub magnitude: f64,
}

impl FaultWindow {
    /// Whether the window covers instant `t`.
    pub fn covers(&self, t: Nanos) -> bool {
        self.start <= t && t < self.end
    }
}

/// Tunes [`FaultPlan::generate`]: mean windows per fault kind and the
/// window-length band. Everything is derived deterministically from the
/// seed passed to `generate`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlanConfig {
    /// Fault kinds to schedule (defaults to every kind except
    /// [`FaultKind::ActorPanic`], which only middleware harnesses opt into).
    pub kinds: Vec<FaultKind>,
    /// Windows scheduled per kind.
    pub windows_per_kind: usize,
    /// Shortest window.
    pub min_window: Nanos,
    /// Longest window.
    pub max_window: Nanos,
}

impl Default for FaultPlanConfig {
    fn default() -> FaultPlanConfig {
        FaultPlanConfig {
            kinds: vec![
                FaultKind::SampleDropout,
                FaultKind::FrameCorruption,
                FaultKind::NoiseBurst,
                FaultKind::Disconnect,
                FaultKind::CounterStall,
                FaultKind::SpuriousReset,
                FaultKind::SlotRevocation,
            ],
            windows_per_kind: 2,
            min_window: Nanos::from_secs(2),
            max_window: Nanos::from_secs(10),
        }
    }
}

/// A deterministic schedule of fault windows over a run.
///
/// The empty plan ([`FaultPlan::none`]) is the default everywhere and
/// injects nothing, so fault-aware components behave bit-identically to
/// their pre-fault versions unless a plan is explicitly supplied.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// The empty plan: no faults, zero overhead.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builds a plan from explicit windows (sorted by start time).
    pub fn from_windows(mut windows: Vec<FaultWindow>) -> FaultPlan {
        windows.sort_by_key(|w| (w.start, w.kind));
        FaultPlan { windows }
    }

    /// Generates a reproducible schedule: `cfg.windows_per_kind` windows
    /// of each kind in `cfg.kinds`, placed uniformly over `[0, duration)`
    /// with lengths in `[cfg.min_window, cfg.max_window]`. The same
    /// `(seed, duration, cfg)` triple always yields the same plan.
    pub fn generate(seed: u64, duration: Nanos, cfg: &FaultPlanConfig) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00FA_017F_A017);
        let mut windows = Vec::with_capacity(cfg.kinds.len() * cfg.windows_per_kind);
        let span = duration.as_u64().max(1);
        let min_len = cfg.min_window.as_u64().max(1);
        let max_len = cfg.max_window.as_u64().max(min_len);
        for &kind in &cfg.kinds {
            for _ in 0..cfg.windows_per_kind {
                let len = if max_len > min_len {
                    rng.gen_range(min_len..=max_len)
                } else {
                    min_len
                };
                let start = rng.gen_range(0..span.saturating_sub(len).max(1));
                let magnitude = match kind {
                    FaultKind::NoiseBurst => 4.0 + rng.gen_range(0.0..8.0),
                    FaultKind::SlotRevocation => 1.0 + rng.gen_range(0u64..2) as f64,
                    _ => 0.0,
                };
                windows.push(FaultWindow {
                    kind,
                    start: Nanos(start),
                    end: Nanos(start + len),
                    magnitude,
                });
            }
        }
        FaultPlan::from_windows(windows)
    }

    /// All windows, sorted by start time.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The first active window of `kind` at instant `t`, if any.
    pub fn active(&self, kind: FaultKind, t: Nanos) -> Option<&FaultWindow> {
        self.windows.iter().find(|w| w.kind == kind && w.covers(t))
    }

    /// Whether any window of `kind` covers `t`.
    pub fn is_active(&self, kind: FaultKind, t: Nanos) -> bool {
        self.active(kind, t).is_some()
    }

    /// Number of windows scheduled for `kind`.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.windows.iter().filter(|w| w.kind == kind).count()
    }

    /// Distinct kinds present in the plan.
    pub fn kinds(&self) -> Vec<FaultKind> {
        let mut kinds: Vec<FaultKind> = self.windows.iter().map(|w| w.kind).collect();
        kinds.sort();
        kinds.dedup();
        kinds
    }

    /// Restricts the plan to windows satisfying `keep` (e.g. meter-only).
    pub fn filtered(&self, keep: impl Fn(FaultKind) -> bool) -> FaultPlan {
        FaultPlan {
            windows: self
                .windows
                .iter()
                .copied()
                .filter(|w| keep(w.kind))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_per_seed() {
        let cfg = FaultPlanConfig::default();
        let a = FaultPlan::generate(7, Nanos::from_secs(100), &cfg);
        let b = FaultPlan::generate(7, Nanos::from_secs(100), &cfg);
        assert_eq!(a, b);
        let c = FaultPlan::generate(8, Nanos::from_secs(100), &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn generate_schedules_every_requested_kind() {
        let cfg = FaultPlanConfig::default();
        let plan = FaultPlan::generate(1, Nanos::from_secs(200), &cfg);
        assert_eq!(plan.windows().len(), cfg.kinds.len() * cfg.windows_per_kind);
        for &kind in &cfg.kinds {
            assert_eq!(plan.count(kind), cfg.windows_per_kind, "{kind}");
        }
        assert!(!plan.kinds().contains(&FaultKind::ActorPanic));
    }

    #[test]
    fn windows_sorted_and_within_duration() {
        let plan = FaultPlan::generate(3, Nanos::from_secs(60), &FaultPlanConfig::default());
        let starts: Vec<u64> = plan.windows().iter().map(|w| w.start.as_u64()).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
        for w in plan.windows() {
            assert!(w.start < w.end);
            assert!(w.start < Nanos::from_secs(60));
        }
    }

    #[test]
    fn active_respects_half_open_window() {
        let plan = FaultPlan::from_windows(vec![FaultWindow {
            kind: FaultKind::Disconnect,
            start: Nanos(10),
            end: Nanos(20),
            magnitude: 0.0,
        }]);
        assert!(!plan.is_active(FaultKind::Disconnect, Nanos(9)));
        assert!(plan.is_active(FaultKind::Disconnect, Nanos(10)));
        assert!(plan.is_active(FaultKind::Disconnect, Nanos(19)));
        assert!(!plan.is_active(FaultKind::Disconnect, Nanos(20)));
        assert!(!plan.is_active(FaultKind::SampleDropout, Nanos(15)));
    }

    #[test]
    fn none_is_empty_and_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(plan.kinds().is_empty());
        assert!(plan.active(FaultKind::CounterStall, Nanos(0)).is_none());
    }

    #[test]
    fn filtered_splits_meter_from_counter_faults() {
        let plan = FaultPlan::generate(9, Nanos::from_secs(100), &FaultPlanConfig::default());
        let meter = plan.filtered(FaultKind::is_meter);
        let counter = plan.filtered(FaultKind::is_counter);
        assert!(meter.windows().iter().all(|w| w.kind.is_meter()));
        assert!(counter.windows().iter().all(|w| w.kind.is_counter()));
        assert_eq!(
            meter.windows().len() + counter.windows().len(),
            plan.windows().len()
        );
    }

    #[test]
    fn kind_classes_partition_hardware_kinds() {
        for kind in FaultKind::ALL {
            assert!(!(kind.is_meter() && kind.is_counter()), "{kind}");
            assert!(!kind.to_string().is_empty());
        }
    }
}
