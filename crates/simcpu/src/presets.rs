//! Ready-made machine configurations for the paper's experiments, plus the
//! [`Spec`] view that regenerates Table 1.

use crate::cache::CacheHierarchy;
use crate::cstate::CStateMenu;
use crate::freq::{ladder, PState, PStateTable};
use crate::machine::MachineConfig;
use crate::power::PowerModel;
use crate::topology::Topology;
use crate::units::MegaHertz;

/// The paper's testbed (Table 1): Intel Core i3-2120 — 2 cores × 2 SMT
/// threads, 1.6–3.3 GHz SpeedStep, HyperThreading, **no** TurboBoost,
/// C-states, 65 W TDP, 32 KB L1d + 256 KB L2 per core, 3 MB shared L3.
pub fn intel_i3_2120() -> MachineConfig {
    let freqs = [1600, 1800, 2000, 2200, 2400, 2600, 2800, 3000, 3200, 3300];
    MachineConfig {
        vendor: "Intel".to_string(),
        family: "i3".to_string(),
        model: "2120".to_string(),
        topology: Topology::new(1, 2, 2).expect("valid topology"),
        pstates: PStateTable::without_turbo(ladder(&freqs, 0.85, 1.05).expect("valid ladder"))
            .expect("valid table"),
        cstates: CStateMenu::sandy_bridge(),
        caches: CacheHierarchy::new(32, 256, 3072).expect("valid caches"),
        power: PowerModel::builder()
            .platform_idle_w(26.0)
            .package_idle_w(5.5)
            .core_baseline_w_per_ghz_v2(2.7)
            .smt_second_thread_factor(0.10)
            .vref(1.05)
            .thermal_tau_s(30.0)
            .thermal_resistance_c_per_w(1.2)
            .thermal_leak_w_per_c(0.30)
            .build(),
        tdp_w: 65.0,
    }
}

/// The Bertran et al. comparison platform: Intel Core 2 Duo E6600 — a
/// "simple architecture without any features for improving performances
/// (no HyperThreading, no TurboBoost)", which is why counter-linear models
/// fit it so well (§4).
pub fn core2duo_e6600() -> MachineConfig {
    MachineConfig {
        vendor: "Intel".to_string(),
        family: "Core 2 Duo".to_string(),
        model: "E6600".to_string(),
        topology: Topology::new(1, 2, 1).expect("valid topology"),
        pstates: PStateTable::without_turbo(
            ladder(&[1600, 1867, 2133, 2400], 1.10, 1.25).expect("valid ladder"),
        )
        .expect("valid table"),
        cstates: CStateMenu::halt_only(),
        caches: CacheHierarchy::new(32, 1024, 4096).expect("valid caches"),
        power: PowerModel::builder()
            .platform_idle_w(38.0)
            .package_idle_w(9.0)
            .core_baseline_w_per_ghz_v2(3.4)
            // No SMT on this part; the factor is irrelevant but harmless.
            .smt_second_thread_factor(0.25)
            .uncore_active_w(1.0)
            .vref(1.25)
            // Small die, generous heatsink for its era: little thermal
            // leakage swing — part of why linear models fit it so well.
            .thermal_tau_s(25.0)
            .thermal_resistance_c_per_w(0.5)
            .thermal_leak_w_per_c(0.05)
            .build(),
        tdp_w: 65.0,
    }
}

/// An SMT + TurboBoost server part in the spirit of the HaPPy evaluation
/// machines (Zhai et al.): 4 cores × 2 threads with active-core-dependent
/// turbo bins — the architecture class where HT-oblivious models go wrong.
pub fn xeon_smt_turbo() -> MachineConfig {
    let turbo = vec![
        PState::new(MegaHertz(3200), 1.16).expect("valid"),
        PState::new(MegaHertz(3100), 1.14).expect("valid"),
        PState::new(MegaHertz(3000), 1.12).expect("valid"),
        PState::new(MegaHertz(2900), 1.10).expect("valid"),
    ];
    MachineConfig {
        vendor: "Intel".to_string(),
        family: "Xeon".to_string(),
        model: "E5-sim".to_string(),
        topology: Topology::new(1, 4, 2).expect("valid topology"),
        pstates: PStateTable::new(
            ladder(&[1200, 1600, 2000, 2300, 2600], 0.80, 1.02).expect("valid ladder"),
            turbo,
        )
        .expect("valid table"),
        cstates: CStateMenu::sandy_bridge(),
        caches: CacheHierarchy::new(32, 256, 8192).expect("valid caches"),
        power: PowerModel::builder()
            .platform_idle_w(55.0)
            .package_idle_w(11.0)
            .core_baseline_w_per_ghz_v2(3.1)
            .smt_second_thread_factor(0.12)
            .uncore_active_w(4.5)
            .vref(1.02)
            .thermal_tau_s(40.0)
            .thermal_resistance_c_per_w(0.9)
            .thermal_leak_w_per_c(0.30)
            .build(),
        tdp_w: 95.0,
    }
}

/// The Table-1 style specification sheet of a machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// Vendor name.
    pub vendor: String,
    /// Processor family.
    pub processor: String,
    /// Model designation.
    pub model: String,
    /// Hardware-thread count ("Design" row of Table 1).
    pub design_threads: usize,
    /// Maximum nominal frequency.
    pub frequency: MegaHertz,
    /// Thermal design power, watts.
    pub tdp_w: f64,
    /// SpeedStep / DVFS support.
    pub speedstep: bool,
    /// HyperThreading / SMT support.
    pub hyperthreading: bool,
    /// TurboBoost / overclocking support.
    pub turboboost: bool,
    /// Idle C-state support (beyond plain C1 halt).
    pub cstates: bool,
    /// L1 cache per core in KB (instruction + data sides).
    pub l1_per_core_kb: u32,
    /// L2 cache per core in KB.
    pub l2_per_core_kb: u32,
    /// Shared L3 in KB.
    pub l3_kb: u32,
}

impl Spec {
    /// Extracts the spec sheet from a machine configuration.
    pub fn of(config: &MachineConfig) -> Spec {
        Spec {
            vendor: config.vendor.clone(),
            processor: config.family.clone(),
            model: config.model.clone(),
            design_threads: config.topology.logical_cpus(),
            frequency: config.pstates.max().frequency(),
            tdp_w: config.tdp_w,
            speedstep: config.pstates.states().len() > 1,
            hyperthreading: config.topology.has_smt(),
            turboboost: config.pstates.has_turbo(),
            cstates: config.cstates.len() > 1,
            // Table 1 counts both I and D sides: 2 × L1d.
            l1_per_core_kb: config.caches.l1d_kb() * 2,
            l2_per_core_kb: config.caches.l2_kb(),
            l3_kb: config.caches.l3_kb(),
        }
    }

    /// The spec as (label, value) rows in Table 1's order.
    pub fn rows(&self) -> Vec<(String, String)> {
        let mark = |b: bool| if b { "yes" } else { "no" }.to_string();
        vec![
            ("Vendor".to_string(), self.vendor.clone()),
            ("Processor".to_string(), self.processor.clone()),
            ("Model".to_string(), self.model.clone()),
            (
                "Design".to_string(),
                format!("{} threads", self.design_threads),
            ),
            ("Frequency".to_string(), self.frequency.to_string()),
            ("TDP".to_string(), format!("{:.0} W", self.tdp_w)),
            ("SpeedStep (DVFS)".to_string(), mark(self.speedstep)),
            (
                "HyperThreading (SMT)".to_string(),
                mark(self.hyperthreading),
            ),
            (
                "TurboBoost (Overclocking)".to_string(),
                mark(self.turboboost),
            ),
            ("C-states (Idle states)".to_string(), mark(self.cstates)),
            (
                "L1 cache".to_string(),
                format!("{} KB / core", self.l1_per_core_kb),
            ),
            (
                "L2 cache".to_string(),
                format!("{} KB / core", self.l2_per_core_kb),
            ),
            ("L3 cache".to_string(), format!("{} MB", self.l3_kb / 1024)),
        ]
    }
}

impl std::fmt::Display for Spec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (label, value) in self.rows() {
            writeln!(f, "{label:<28} {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i3_matches_table_1() {
        let spec = Spec::of(&intel_i3_2120());
        assert_eq!(spec.vendor, "Intel");
        assert_eq!(spec.processor, "i3");
        assert_eq!(spec.model, "2120");
        assert_eq!(spec.design_threads, 4);
        assert_eq!(spec.frequency, MegaHertz(3300));
        assert_eq!(spec.tdp_w, 65.0);
        assert!(spec.speedstep, "Table 1: SpeedStep yes");
        assert!(spec.hyperthreading, "Table 1: HyperThreading yes");
        assert!(!spec.turboboost, "Table 1: TurboBoost no");
        assert!(spec.cstates, "Table 1: C-states yes");
        assert_eq!(spec.l1_per_core_kb, 64, "Table 1: L1 64 KB / core");
        assert_eq!(spec.l2_per_core_kb, 256, "Table 1: L2 256 KB / core");
        assert_eq!(spec.l3_kb, 3072, "Table 1: L3 3 MB");
    }

    #[test]
    fn core2duo_is_simple() {
        let spec = Spec::of(&core2duo_e6600());
        assert!(!spec.hyperthreading);
        assert!(!spec.turboboost);
        assert!(!spec.cstates, "halt-only menu counts as no deep C-states");
        assert_eq!(spec.design_threads, 2);
    }

    #[test]
    fn xeon_has_everything() {
        let spec = Spec::of(&xeon_smt_turbo());
        assert!(spec.hyperthreading);
        assert!(spec.turboboost);
        assert!(spec.cstates);
        assert_eq!(spec.design_threads, 8);
    }

    #[test]
    fn spec_rows_match_table_1_layout() {
        let rows = Spec::of(&intel_i3_2120()).rows();
        assert_eq!(rows.len(), 13);
        assert_eq!(rows[0].0, "Vendor");
        assert_eq!(rows[4].1, "3.30 GHz");
        assert_eq!(rows[12].1, "3 MB");
        let display = Spec::of(&intel_i3_2120()).to_string();
        let turbo_line = display
            .lines()
            .find(|l| l.starts_with("TurboBoost"))
            .expect("turbo row present");
        assert!(turbo_line.ends_with("no"));
    }

    #[test]
    fn presets_boot() {
        use crate::machine::Machine;
        for cfg in [intel_i3_2120(), core2duo_e6600(), xeon_smt_turbo()] {
            let m = Machine::new(cfg);
            assert!(m.last_power().as_f64() > 0.0);
        }
    }
}
