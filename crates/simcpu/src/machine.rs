//! The machine: topology + DVFS + C-states + caches + counters + the
//! ground-truth power model, advanced tick by tick.
//!
//! The OS layer drives a [`Machine`] by assigning at most one [`WorkUnit`]
//! per logical CPU per tick; the machine executes the work, accumulates
//! hardware counters and energy, and reports per-CPU event deltas plus the
//! slice's average power.

use crate::cache::CacheHierarchy;
use crate::counters::{CounterBank, ExecDelta};
use crate::cstate::{CStateMenu, Residency};
use crate::exec::{execute, ExecContext};
use crate::freq::PStateTable;
use crate::power::{CoreSlice, PowerBreakdown, PowerModel};
use crate::topology::Topology;
use crate::units::{CpuId, Joules, MegaHertz, Nanos, Watts};
use crate::workunit::WorkUnit;
use crate::{Error, Result};

/// Full static description of a machine (used by [`Machine::new`] and the
/// presets).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Vendor string, e.g. `"Intel"`.
    pub vendor: String,
    /// Processor family, e.g. `"i3"`.
    pub family: String,
    /// Model designation, e.g. `"2120"`.
    pub model: String,
    /// CPU layout.
    pub topology: Topology,
    /// DVFS table (+turbo bins when supported).
    pub pstates: PStateTable,
    /// Idle-state menu.
    pub cstates: CStateMenu,
    /// Cache hierarchy.
    pub caches: CacheHierarchy,
    /// Hidden ground-truth power model.
    pub power: PowerModel,
    /// Thermal design power, watts (documentation/Table-1 only).
    pub tdp_w: f64,
}

/// Result of advancing the machine one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TickReport {
    /// Per-logical-CPU retired events for the slice (indexed by `CpuId`).
    pub deltas: Vec<ExecDelta>,
    /// Average whole-machine power over the slice.
    pub power: Watts,
    /// Average CPU-package power over the slice (the RAPL PKG view).
    pub package_power: Watts,
    /// Detailed decomposition (test/diagnostic use; a real machine would
    /// not expose this).
    pub breakdown: PowerBreakdown,
    /// Machine time at the *end* of the tick.
    pub now: Nanos,
}

/// A running machine instance.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    requested_freq: Vec<MegaHertz>,
    idle_hint: Vec<Option<Nanos>>,
    banks: Vec<CounterBank>,
    residency: Vec<Residency>,
    last_busy: Vec<f64>,
    time: Nanos,
    temp_c: f64,
    temp_ref_c: f64,
    machine_energy: Joules,
    package_energy: Joules,
    last_power: Watts,
}

impl Machine {
    /// Boots a machine from its configuration. All cores start at the
    /// lowest P-state (as an `ondemand`-governed Linux box would).
    pub fn new(config: MachineConfig) -> Machine {
        let cpus = config.topology.logical_cpus();
        let cores = config.topology.physical_cores();
        let f0 = config.pstates.min().frequency();
        // Boot thermally settled at the idle operating point: leakage is
        // measured relative to this reference.
        let idle_pkg = config
            .power
            .idle_machine_power(cores, &config.cstates.states()[config.cstates.len() - 1])
            .as_f64()
            * 0.2; // rough package share of the idle floor
        let temp0 = config.power.steady_temp_c(idle_pkg);
        Machine {
            requested_freq: vec![f0; cores],
            idle_hint: vec![None; cores],
            banks: vec![CounterBank::new(); cpus],
            residency: vec![Residency::new(); cores],
            last_busy: vec![0.0; cpus],
            time: Nanos::ZERO,
            temp_c: temp0,
            temp_ref_c: temp0,
            machine_energy: Joules::ZERO,
            package_energy: Joules::ZERO,
            last_power: config
                .power
                .idle_machine_power(cores, &config.cstates.states()[config.cstates.len() - 1]),
            config,
        }
    }

    /// The machine's static configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Topology shortcut.
    pub fn topology(&self) -> &Topology {
        &self.config.topology
    }

    /// P-state table shortcut.
    pub fn pstates(&self) -> &PStateTable {
        &self.config.pstates
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.time
    }

    /// Total machine energy consumed so far.
    pub fn machine_energy(&self) -> Joules {
        self.machine_energy
    }

    /// Total CPU-package energy consumed so far (the RAPL PKG quantity).
    pub fn package_energy(&self) -> Joules {
        self.package_energy
    }

    /// Whole-machine power averaged over the most recent tick.
    pub fn last_power(&self) -> Watts {
        self.last_power
    }

    /// Current die temperature in °C.
    pub fn temperature_c(&self) -> f64 {
        self.temp_c
    }

    /// Cumulative hardware counters of a logical CPU.
    ///
    /// # Errors
    ///
    /// [`Error::NoSuchCpu`] for out-of-range ids.
    pub fn counters(&self, cpu: CpuId) -> Result<&CounterBank> {
        self.banks.get(cpu.as_usize()).ok_or(Error::NoSuchCpu {
            cpu,
            available: self.banks.len(),
        })
    }

    /// Busy fraction of a logical CPU during the most recent tick — the
    /// signal the `ondemand` governor keys on.
    ///
    /// # Errors
    ///
    /// [`Error::NoSuchCpu`] for out-of-range ids.
    pub fn utilization(&self, cpu: CpuId) -> Result<f64> {
        self.last_busy
            .get(cpu.as_usize())
            .copied()
            .ok_or(Error::NoSuchCpu {
                cpu,
                available: self.last_busy.len(),
            })
    }

    /// Sets the requested (nominal) frequency of a core. Turbo, when
    /// present, may transparently raise the *effective* frequency.
    ///
    /// # Errors
    ///
    /// [`Error::NoSuchCpu`] for a bad core index (reported via its first
    /// logical CPU) or [`Error::UnsupportedFrequency`] for a frequency not
    /// in the nominal table.
    pub fn set_frequency(&mut self, core: usize, f: MegaHertz) -> Result<()> {
        if core >= self.requested_freq.len() {
            return Err(Error::NoSuchCpu {
                cpu: CpuId(core * self.config.topology.threads_per_core()),
                available: self.banks.len(),
            });
        }
        // Validate against the nominal states only.
        if !self
            .config
            .pstates
            .states()
            .iter()
            .any(|s| s.frequency() == f)
        {
            return Err(Error::UnsupportedFrequency { requested: f });
        }
        self.requested_freq[core] = f;
        Ok(())
    }

    /// The requested frequency of a core.
    ///
    /// # Panics
    ///
    /// Panics when `core` is out of range.
    pub fn frequency(&self, core: usize) -> MegaHertz {
        self.requested_freq[core]
    }

    /// Supplies the OS idle governor's predicted idle duration for a core;
    /// the machine uses it to choose the C-state for the core's idle
    /// residue (in place of the per-slice default).
    ///
    /// # Errors
    ///
    /// [`Error::NoSuchCpu`] for a bad core index.
    pub fn set_idle_hint(&mut self, core: usize, predicted_idle: Nanos) -> Result<()> {
        if core >= self.idle_hint.len() {
            return Err(Error::NoSuchCpu {
                cpu: CpuId(core * self.config.topology.threads_per_core()),
                available: self.banks.len(),
            });
        }
        self.idle_hint[core] = Some(predicted_idle);
        Ok(())
    }

    /// C-state/busy residency bookkeeping for a core.
    ///
    /// # Panics
    ///
    /// Panics when `core` is out of range.
    pub fn residency(&self, core: usize) -> &Residency {
        &self.residency[core]
    }

    /// Advances the machine by `dt_ns`, running the given work assignment.
    ///
    /// `assignment[i]` is the work for logical CPU `i` (`None` = idle).
    /// Extra entries are ignored; missing entries count as idle.
    pub fn tick(&mut self, assignment: &[Option<&WorkUnit>], dt_ns: u64) -> TickReport {
        let dt = Nanos(dt_ns);
        let topo = self.config.topology.clone();
        let n_cpus = topo.logical_cpus();
        let smt = topo.threads_per_core();

        // Active cores (any thread with real work) determine turbo bins.
        let busy_of = |cpu: usize| -> f64 {
            assignment
                .get(cpu)
                .copied()
                .flatten()
                .map_or(0.0, |w| w.intensity())
        };
        let active_cores = topo
            .cores()
            .filter(|c| {
                topo.threads_of(*c)
                    .iter()
                    .any(|t| busy_of(t.as_usize()) > 0.0)
            })
            .count();

        let mut deltas = vec![ExecDelta::zero(); n_cpus];
        let mut slices = Vec::with_capacity(topo.physical_cores());

        for core in topo.cores() {
            let threads = topo.threads_of(core);
            let requested = self.requested_freq[core.as_usize()];
            let pstate = self
                .config
                .pstates
                .effective(requested, active_cores)
                .expect("requested frequency validated at set time");

            let mut thread_busy = [0.0f64; 2];
            let mut thread_deltas = [ExecDelta::zero(), ExecDelta::zero()];
            for (slot, t) in threads.iter().enumerate() {
                let i = t.as_usize();
                let sibling_busy = threads
                    .iter()
                    .enumerate()
                    .any(|(s2, t2)| s2 != slot && busy_of(t2.as_usize()) > 0.0);
                if let Some(work) = assignment.get(i).copied().flatten() {
                    let ctx = ExecContext {
                        pstate,
                        reference_clock: self.config.pstates.max().frequency(),
                        sibling_active: sibling_busy,
                    };
                    let out = execute(work, &ctx, &self.config.caches, dt);
                    thread_busy[slot] = out.busy_fraction;
                    thread_deltas[slot] = out.delta;
                    deltas[i] = out.delta;
                    self.banks[i].apply(&out.delta);
                    self.last_busy[i] = out.busy_fraction;
                } else {
                    self.last_busy[i] = 0.0;
                }
            }

            // Residency: busy by the most-utilized thread, idle residue in
            // the state the menu picks for this slice length.
            let core_busy = thread_busy[0].max(if smt > 1 { thread_busy[1] } else { 0.0 });
            let predicted = self.idle_hint[core.as_usize()].unwrap_or(dt);
            let idle_state = self.config.cstates.pick(predicted);
            let ridx = core.as_usize();
            self.residency[ridx].add_busy(Nanos((dt_ns as f64 * core_busy) as u64));
            self.residency[ridx].add_idle(
                &idle_state,
                Nanos((dt_ns as f64 * (1.0 - core_busy)) as u64),
            );

            slices.push(CoreSlice {
                pstate,
                thread_busy,
                deltas: thread_deltas,
                idle_state,
            });
        }

        let breakdown = self.config.power.slice_power(&slices, dt);
        // Temperature-dependent leakage: follows load history, not
        // counters — the history-dependent error source real linear
        // models face (McCullough et al., the paper's ref. [5]).
        let leak = self
            .config
            .power
            .thermal_leakage_w(self.temp_c, self.temp_ref_c)
            .max(0.0);
        let power = Watts(breakdown.machine().as_f64() + leak);
        let package_power = Watts(breakdown.package().as_f64() + leak);
        let tau = self.config.power.thermal_tau_s();
        if tau > 0.0 {
            let target = self.config.power.steady_temp_c(package_power.as_f64());
            let alpha = (dt.as_secs_f64() / tau).min(1.0);
            self.temp_c += alpha * (target - self.temp_c);
        }
        self.machine_energy += power.over(dt);
        self.package_energy += package_power.over(dt);
        self.time += dt;
        self.last_power = power;

        TickReport {
            deltas,
            power,
            package_power,
            breakdown,
            now: self.time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    const MS: u64 = 1_000_000;

    #[test]
    fn boots_at_lowest_pstate_and_idle_power() {
        let m = Machine::new(presets::intel_i3_2120());
        assert_eq!(m.frequency(0), m.pstates().min().frequency());
        assert_eq!(m.now(), Nanos::ZERO);
        assert!(m.last_power().as_f64() > 25.0 && m.last_power().as_f64() < 40.0);
    }

    #[test]
    fn idle_tick_accumulates_floor_energy_only() {
        let mut m = Machine::new(presets::intel_i3_2120());
        let r = m.tick(&[None, None, None, None], 1_000 * MS);
        assert!(r.deltas.iter().all(|d| d.is_zero()));
        // ~31.6 W for 1 s.
        let e = m.machine_energy().as_f64();
        assert!((e - 31.62).abs() < 0.5, "idle energy = {e}");
        assert_eq!(m.now(), Nanos::from_secs(1));
    }

    #[test]
    fn busy_tick_produces_counters_and_power() {
        let mut m = Machine::new(presets::intel_i3_2120());
        m.set_frequency(0, MegaHertz(3300)).unwrap();
        let w = WorkUnit::cpu_intensive(1.0);
        let r = m.tick(&[Some(&w), None, None, None], 100 * MS);
        assert!(r.deltas[0].instructions > 0);
        assert!(r.deltas[1].is_zero());
        assert!(r.power.as_f64() > 32.0, "busy > idle: {}", r.power);
        assert_eq!(
            m.counters(CpuId(0)).unwrap().snapshot().instructions,
            r.deltas[0].instructions
        );
        assert!((m.utilization(CpuId(0)).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(m.utilization(CpuId(1)).unwrap(), 0.0);
    }

    #[test]
    fn set_frequency_validation() {
        let mut m = Machine::new(presets::intel_i3_2120());
        assert!(m.set_frequency(0, MegaHertz(3300)).is_ok());
        assert!(matches!(
            m.set_frequency(0, MegaHertz(12345)),
            Err(Error::UnsupportedFrequency { .. })
        ));
        assert!(matches!(
            m.set_frequency(99, MegaHertz(3300)),
            Err(Error::NoSuchCpu { .. })
        ));
    }

    #[test]
    fn counters_out_of_range_rejected() {
        let m = Machine::new(presets::intel_i3_2120());
        assert!(m.counters(CpuId(4)).is_err());
        assert!(m.utilization(CpuId(4)).is_err());
    }

    #[test]
    fn smt_corun_consumes_less_than_two_cores() {
        let mut m = Machine::new(presets::intel_i3_2120());
        for c in 0..2 {
            m.set_frequency(c, MegaHertz(3300)).unwrap();
        }
        let w = WorkUnit::cpu_intensive(1.0);
        // Co-run on one core (cpus 0,1 are siblings).
        let smt = m.tick(&[Some(&w), Some(&w), None, None], 100 * MS);
        // Spread over two cores (cpus 0,2).
        let spread = m.tick(&[Some(&w), None, Some(&w), None], 100 * MS);
        assert!(
            smt.power < spread.power,
            "SMT co-run {} must be cheaper than two cores {}",
            smt.power,
            spread.power
        );
        // But the spread run retires more instructions in total.
        let smt_inst: u64 = smt.deltas.iter().map(|d| d.instructions).sum();
        let spread_inst: u64 = spread.deltas.iter().map(|d| d.instructions).sum();
        assert!(spread_inst > smt_inst);
    }

    #[test]
    fn turbo_machine_upgrades_at_max_nominal() {
        let mut m = Machine::new(presets::xeon_smt_turbo());
        let cores = m.topology().physical_cores();
        let max = m.pstates().max().frequency();
        for c in 0..cores {
            m.set_frequency(c, max).unwrap();
        }
        let w = WorkUnit::cpu_intensive(1.0);
        // One active core: deepest turbo bin → more instructions per tick
        // than nominal max would allow.
        let mut solo = vec![None; m.topology().logical_cpus()];
        solo[0] = Some(&w);
        let r = m.tick(&solo, 100 * MS);
        let nominal_cycles = max.cycles_over(Nanos(100 * MS));
        assert!(
            r.deltas[0].cycles > nominal_cycles,
            "turbo: {} cycles vs nominal {}",
            r.deltas[0].cycles,
            nominal_cycles
        );
    }

    #[test]
    fn i3_has_no_turbo_as_per_table_1() {
        let mut m = Machine::new(presets::intel_i3_2120());
        m.set_frequency(0, MegaHertz(3300)).unwrap();
        let w = WorkUnit::cpu_intensive(1.0);
        let r = m.tick(&[Some(&w), None, None, None], 100 * MS);
        assert_eq!(
            r.deltas[0].cycles,
            MegaHertz(3300).cycles_over(Nanos(100 * MS))
        );
    }

    #[test]
    fn residency_tracks_busy_and_idle() {
        let mut m = Machine::new(presets::intel_i3_2120());
        let w = WorkUnit::cpu_intensive(0.5);
        m.tick(&[Some(&w), None, None, None], 1_000 * MS);
        let r0 = m.residency(0);
        assert!((r0.busy().as_secs_f64() - 0.5).abs() < 0.01);
        assert!((r0.total_idle().as_secs_f64() - 0.5).abs() < 0.01);
        let r1 = m.residency(1);
        assert_eq!(r1.busy(), Nanos::ZERO);
        assert!((r1.total_idle().as_secs_f64() - 1.0).abs() < 0.01);
    }

    #[test]
    fn energy_is_monotone_nondecreasing() {
        let mut m = Machine::new(presets::intel_i3_2120());
        let w = WorkUnit::memory_intensive(65536.0, 0.7);
        let mut last = 0.0;
        for i in 0..10 {
            let assign: Vec<Option<&WorkUnit>> = if i % 2 == 0 {
                vec![Some(&w), None, None, None]
            } else {
                vec![None, None, None, None]
            };
            m.tick(&assign, 50 * MS);
            let e = m.machine_energy().as_f64();
            assert!(e > last);
            last = e;
        }
        assert!(m.package_energy().as_f64() < m.machine_energy().as_f64());
    }
}

#[cfg(test)]
mod idle_hint_tests {
    use super::*;
    use crate::presets;

    #[test]
    fn idle_hint_steers_cstate_choice() {
        // A short predicted idle forces shallow C1 (60 % of idle power)
        // instead of deep C6 (5 %), so idle power must rise.
        let mut deep = Machine::new(presets::intel_i3_2120());
        let mut shallow = Machine::new(presets::intel_i3_2120());
        for core in 0..2 {
            shallow.set_idle_hint(core, Nanos(1_000)).unwrap();
        }
        let pd = deep.tick(&[None; 4], 10_000_000).power;
        let ps = shallow.tick(&[None; 4], 10_000_000).power;
        assert!(ps > pd, "shallow idle {ps} must exceed deep idle {pd}");
    }

    #[test]
    fn idle_hint_validates_core() {
        let mut m = Machine::new(presets::intel_i3_2120());
        assert!(m.set_idle_hint(0, Nanos(1)).is_ok());
        assert!(m.set_idle_hint(7, Nanos(1)).is_err());
    }
}

#[cfg(test)]
mod thermal_tests {
    use super::*;
    use crate::presets;
    use crate::workunit::WorkUnit;

    #[test]
    fn sustained_load_heats_the_die_and_raises_power() {
        let mut m = Machine::new(presets::intel_i3_2120());
        for c in 0..2 {
            m.set_frequency(c, MegaHertz(3300)).unwrap();
        }
        let t0 = m.temperature_c();
        let w = WorkUnit::cpu_intensive(1.0);
        let assign = [Some(&w), Some(&w), Some(&w), Some(&w)];
        let cold = m.tick(&assign, 100_000_000).power;
        // 120 s of sustained full load (several thermal time constants).
        for _ in 0..1200 {
            m.tick(&assign, 100_000_000);
        }
        let hot = m.tick(&assign, 100_000_000).power;
        assert!(
            m.temperature_c() > t0 + 10.0,
            "die heated: {}",
            m.temperature_c()
        );
        assert!(
            hot.as_f64() > cold.as_f64() + 2.0,
            "thermal leakage raises power: cold {cold}, hot {hot}"
        );
    }

    #[test]
    fn idle_machine_stays_at_reference_temperature() {
        let mut m = Machine::new(presets::intel_i3_2120());
        let t0 = m.temperature_c();
        for _ in 0..600 {
            m.tick(&[None; 4], 100_000_000);
        }
        assert!(
            (m.temperature_c() - t0).abs() < 3.0,
            "{}",
            m.temperature_c()
        );
        // Idle power essentially unchanged.
        let p = m.tick(&[None; 4], 100_000_000).power.as_f64();
        assert!((p - 31.6).abs() < 1.5, "idle stays ~31.6 W: {p}");
    }

    #[test]
    fn cooling_after_load_decays_back() {
        let mut m = Machine::new(presets::intel_i3_2120());
        let w = WorkUnit::cpu_intensive(1.0);
        let assign = [Some(&w), Some(&w), Some(&w), Some(&w)];
        for _ in 0..900 {
            m.tick(&assign, 100_000_000);
        }
        let hot = m.temperature_c();
        for _ in 0..1800 {
            m.tick(&[None; 4], 100_000_000);
        }
        assert!(
            m.temperature_c() < hot - 10.0,
            "cooled from {hot} to {}",
            m.temperature_c()
        );
    }
}
