//! Unit newtypes. Watts, joules, megahertz, nanoseconds and CPU indices are
//! all easy to confuse as bare numbers; newtypes keep them straight at
//! compile time (C-NEWTYPE).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Instantaneous power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(pub f64);

impl Watts {
    /// The zero power value.
    pub const ZERO: Watts = Watts(0.0);

    /// Raw value in watts.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Energy accumulated over a duration.
    pub fn over(self, dt: Nanos) -> Joules {
        Joules(self.0 * dt.as_secs_f64())
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} W", self.0)
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        Watts(iter.map(|w| w.0).sum())
    }
}

/// Energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(pub f64);

impl Joules {
    /// The zero energy value.
    pub const ZERO: Joules = Joules(0.0);

    /// Raw value in joules.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Average power over a duration.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is zero.
    pub fn per(self, dt: Nanos) -> Watts {
        assert!(dt.0 > 0, "cannot average energy over a zero duration");
        Watts(self.0 / dt.as_secs_f64())
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} J", self.0)
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        Joules(iter.map(|j| j.0).sum())
    }
}

/// Clock frequency in megahertz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MegaHertz(pub u32);

impl MegaHertz {
    /// Value in MHz.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Value in GHz.
    pub fn as_ghz(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Cycles elapsed over a duration at this frequency.
    pub fn cycles_over(self, dt: Nanos) -> u64 {
        // MHz · ns = 10⁶/s · 10⁻⁹ s = 10⁻³ cycles.
        (self.0 as u128 * dt.0 as u128 / 1000) as u64
    }
}

impl fmt::Display for MegaHertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1000) {
            write!(f, "{:.1} GHz", self.as_ghz())
        } else {
            write!(f, "{:.2} GHz", self.as_ghz())
        }
    }
}

/// Simulated time / durations in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Builds from whole milliseconds.
    pub fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// Builds from whole seconds.
    pub fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// Duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration in nanoseconds.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} s", self.as_secs_f64())
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl Div<Nanos> for Nanos {
    type Output = u64;
    fn div(self, rhs: Nanos) -> u64 {
        self.0 / rhs.0
    }
}

/// Index of a logical CPU (a hardware thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CpuId(pub usize);

impl CpuId {
    /// Raw index.
    pub fn as_usize(self) -> usize {
        self.0
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watts_energy_roundtrip() {
        let p = Watts(10.0);
        let e = p.over(Nanos::from_secs(2));
        assert!((e.as_f64() - 20.0).abs() < 1e-12);
        let back = e.per(Nanos::from_secs(2));
        assert!((back.as_f64() - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero duration")]
    fn joules_per_zero_panics() {
        let _ = Joules(1.0).per(Nanos::ZERO);
    }

    #[test]
    fn megahertz_cycles() {
        // 1 GHz for 1 µs = 1000 cycles.
        assert_eq!(MegaHertz(1000).cycles_over(Nanos(1_000)), 1_000);
        // 3.3 GHz for 1 s = 3.3e9 cycles.
        assert_eq!(
            MegaHertz(3300).cycles_over(Nanos::from_secs(1)),
            3_300_000_000
        );
        // No overflow for long durations.
        assert_eq!(
            MegaHertz(3300).cycles_over(Nanos::from_secs(10_000)),
            33_000_000_000_000
        );
    }

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos::from_millis(3);
        let b = Nanos::from_millis(1);
        assert_eq!(a + b, Nanos::from_millis(4));
        assert_eq!(a - b, Nanos::from_millis(2));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a / b, 3);
        assert!((Nanos::from_secs(1).as_secs_f64() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn sums() {
        let total: Watts = [Watts(1.0), Watts(2.5)].into_iter().sum();
        assert!((total.as_f64() - 3.5).abs() < 1e-12);
        let e: Joules = [Joules(1.0), Joules(2.0)].into_iter().sum();
        assert!((e.as_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn displays() {
        assert_eq!(Watts(12.345).to_string(), "12.35 W");
        assert_eq!(MegaHertz(3300).to_string(), "3.30 GHz");
        assert_eq!(MegaHertz(2000).to_string(), "2.0 GHz");
        assert_eq!(CpuId(3).to_string(), "cpu3");
        assert_eq!(Joules(1.5).to_string(), "1.500 J");
    }
}
