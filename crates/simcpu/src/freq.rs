//! DVFS: P-state tables (frequency + core voltage pairs) and TurboBoost
//! bins. The paper's power model is *per frequency* precisely because the
//! voltage that comes with each P-state makes energy-per-event
//! frequency-dependent (`E ∝ V²`).

use crate::units::MegaHertz;
use crate::{Error, Result};

/// One DVFS operating point: a frequency and the core voltage the VRM
/// supplies at that frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PState {
    frequency: MegaHertz,
    voltage: f64,
}

impl PState {
    /// Creates a P-state.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for zero frequency or non-positive voltage.
    pub fn new(frequency: MegaHertz, voltage: f64) -> Result<PState> {
        if frequency.as_u32() == 0 {
            return Err(Error::InvalidConfig("p-state frequency must be non-zero"));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(voltage > 0.0) || !voltage.is_finite() {
            return Err(Error::InvalidConfig("p-state voltage must be positive"));
        }
        Ok(PState { frequency, voltage })
    }

    /// Operating frequency.
    pub fn frequency(&self) -> MegaHertz {
        self.frequency
    }

    /// Core voltage in volts.
    pub fn voltage(&self) -> f64 {
        self.voltage
    }
}

/// An ordered table of supported P-states plus optional turbo bins.
///
/// Turbo bins map *number of active cores* → maximum opportunistic
/// frequency; fewer active cores allow higher turbo, which is what makes
/// turbo power nonlinear in counter space.
#[derive(Debug, Clone, PartialEq)]
pub struct PStateTable {
    states: Vec<PState>,
    turbo: Vec<PState>,
}

impl PStateTable {
    /// Builds a table from nominal states (ascending frequency) and turbo
    /// bins (`turbo[k]` = bin with `k+1` active cores... stored most
    /// aggressive first; see [`PStateTable::turbo_for_active_cores`]).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when `states` is empty or not strictly
    /// ascending in frequency.
    pub fn new(states: Vec<PState>, turbo: Vec<PState>) -> Result<PStateTable> {
        if states.is_empty() {
            return Err(Error::InvalidConfig("p-state table must not be empty"));
        }
        for w in states.windows(2) {
            if w[1].frequency() <= w[0].frequency() {
                return Err(Error::InvalidConfig(
                    "p-state table must be strictly ascending in frequency",
                ));
            }
        }
        Ok(PStateTable { states, turbo })
    }

    /// Builds a table with no turbo support.
    ///
    /// # Errors
    ///
    /// Same as [`PStateTable::new`].
    pub fn without_turbo(states: Vec<PState>) -> Result<PStateTable> {
        PStateTable::new(states, Vec::new())
    }

    /// All nominal states, ascending.
    pub fn states(&self) -> &[PState] {
        &self.states
    }

    /// All nominal frequencies, ascending.
    pub fn frequencies(&self) -> Vec<MegaHertz> {
        self.states.iter().map(|s| s.frequency()).collect()
    }

    /// Lowest nominal state.
    pub fn min(&self) -> PState {
        self.states[0]
    }

    /// Highest nominal (non-turbo) state.
    pub fn max(&self) -> PState {
        *self.states.last().expect("non-empty by construction")
    }

    /// Whether any turbo bins exist.
    pub fn has_turbo(&self) -> bool {
        !self.turbo.is_empty()
    }

    /// Looks up the P-state for an exact frequency (nominal or turbo).
    ///
    /// # Errors
    ///
    /// [`Error::UnsupportedFrequency`] when the frequency is not in the
    /// table.
    pub fn state_for(&self, f: MegaHertz) -> Result<PState> {
        self.states
            .iter()
            .chain(self.turbo.iter())
            .find(|s| s.frequency() == f)
            .copied()
            .ok_or(Error::UnsupportedFrequency { requested: f })
    }

    /// The turbo bin available when `active_cores` cores are busy, or
    /// `None` when turbo is absent / exhausted. Bin 0 (1 active core) is
    /// the most aggressive.
    pub fn turbo_for_active_cores(&self, active_cores: usize) -> Option<PState> {
        if active_cores == 0 {
            return None;
        }
        self.turbo.get(active_cores - 1).copied()
    }

    /// The effective operating point for a core asked to run at `request`
    /// with `active_cores` currently active: turbo-capable tables running
    /// at max nominal frequency opportunistically upgrade to their bin.
    ///
    /// # Errors
    ///
    /// [`Error::UnsupportedFrequency`] when `request` is not a nominal
    /// frequency.
    pub fn effective(&self, request: MegaHertz, active_cores: usize) -> Result<PState> {
        let nominal = self
            .states
            .iter()
            .find(|s| s.frequency() == request)
            .copied()
            .ok_or(Error::UnsupportedFrequency { requested: request })?;
        if nominal.frequency() == self.max().frequency() {
            if let Some(t) = self.turbo_for_active_cores(active_cores) {
                if t.frequency() > nominal.frequency() {
                    return Ok(t);
                }
            }
        }
        Ok(nominal)
    }
}

/// Builds a realistic-looking voltage curve for a frequency ladder:
/// voltage rises roughly linearly from `v_min` at the lowest frequency to
/// `v_max` at the highest.
///
/// # Errors
///
/// [`Error::InvalidConfig`] for empty ladders or non-positive voltages.
pub fn ladder(freqs_mhz: &[u32], v_min: f64, v_max: f64) -> Result<Vec<PState>> {
    if freqs_mhz.is_empty() {
        return Err(Error::InvalidConfig("frequency ladder must not be empty"));
    }
    let lo = *freqs_mhz.first().expect("non-empty") as f64;
    let hi = *freqs_mhz.last().expect("non-empty") as f64;
    freqs_mhz
        .iter()
        .map(|&f| {
            let t = if hi > lo {
                (f as f64 - lo) / (hi - lo)
            } else {
                0.0
            };
            PState::new(MegaHertz(f), v_min + t * (v_max - v_min))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PStateTable {
        PStateTable::new(
            ladder(&[1600, 2400, 3300], 0.85, 1.05).unwrap(),
            vec![
                PState::new(MegaHertz(3700), 1.15).unwrap(),
                PState::new(MegaHertz(3500), 1.10).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn pstate_validation() {
        assert!(PState::new(MegaHertz(0), 1.0).is_err());
        assert!(PState::new(MegaHertz(1000), 0.0).is_err());
        assert!(PState::new(MegaHertz(1000), f64::NAN).is_err());
    }

    #[test]
    fn table_must_ascend() {
        let bad = vec![
            PState::new(MegaHertz(2000), 0.9).unwrap(),
            PState::new(MegaHertz(1600), 0.85).unwrap(),
        ];
        assert!(PStateTable::without_turbo(bad).is_err());
        assert!(PStateTable::without_turbo(Vec::new()).is_err());
    }

    #[test]
    fn ladder_voltage_interpolates() {
        let l = ladder(&[1600, 2450, 3300], 0.8, 1.0).unwrap();
        assert!((l[0].voltage() - 0.8).abs() < 1e-12);
        assert!((l[2].voltage() - 1.0).abs() < 1e-12);
        assert!(l[1].voltage() > 0.8 && l[1].voltage() < 1.0);
    }

    #[test]
    fn state_lookup() {
        let t = table();
        assert_eq!(t.min().frequency(), MegaHertz(1600));
        assert_eq!(t.max().frequency(), MegaHertz(3300));
        assert!(t.state_for(MegaHertz(2400)).is_ok());
        assert!(
            t.state_for(MegaHertz(3700)).is_ok(),
            "turbo freq resolvable"
        );
        assert!(matches!(
            t.state_for(MegaHertz(9999)),
            Err(Error::UnsupportedFrequency { .. })
        ));
    }

    #[test]
    fn turbo_bins_depend_on_active_cores() {
        let t = table();
        assert!(t.has_turbo());
        assert_eq!(
            t.turbo_for_active_cores(1).unwrap().frequency(),
            MegaHertz(3700)
        );
        assert_eq!(
            t.turbo_for_active_cores(2).unwrap().frequency(),
            MegaHertz(3500)
        );
        assert_eq!(t.turbo_for_active_cores(3), None, "bins exhausted");
        assert_eq!(t.turbo_for_active_cores(0), None);
    }

    #[test]
    fn effective_upgrades_only_at_max_nominal() {
        let t = table();
        // At max nominal with 1 active core: turbo kicks in.
        let e = t.effective(MegaHertz(3300), 1).unwrap();
        assert_eq!(e.frequency(), MegaHertz(3700));
        // At a lower nominal state turbo must not engage.
        let e = t.effective(MegaHertz(2400), 1).unwrap();
        assert_eq!(e.frequency(), MegaHertz(2400));
        // Without turbo bins the max nominal stays put.
        let nt = PStateTable::without_turbo(ladder(&[1600, 3300], 0.85, 1.05).unwrap()).unwrap();
        let e = nt.effective(MegaHertz(3300), 1).unwrap();
        assert_eq!(e.frequency(), MegaHertz(3300));
    }

    #[test]
    fn effective_rejects_turbo_frequency_as_request() {
        let t = table();
        assert!(t.effective(MegaHertz(3700), 1).is_err());
    }
}
