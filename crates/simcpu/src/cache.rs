//! Analytic cache-hierarchy model. Given a workload's working-set size and
//! temporal locality it yields per-level hit fractions, which drive both
//! the stall model (execution speed) and the `cache-references` /
//! `cache-misses` counters that the paper's power model consumes.

use crate::{Error, Result};

/// Static description of a three-level cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheHierarchy {
    l1d_kb: u32,
    l2_kb: u32,
    l3_kb: u32,
    /// L2 hit latency in core cycles.
    l2_latency_cycles: f64,
    /// L3 hit latency in core cycles.
    l3_latency_cycles: f64,
    /// DRAM latency in nanoseconds (frequency-independent — the memory
    /// wall: at higher core clocks a miss costs *more* cycles).
    dram_latency_ns: f64,
}

impl CacheHierarchy {
    /// Creates a hierarchy.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when capacities are zero or not strictly
    /// increasing (L1 < L2 < L3).
    pub fn new(l1d_kb: u32, l2_kb: u32, l3_kb: u32) -> Result<CacheHierarchy> {
        if l1d_kb == 0 || l2_kb == 0 || l3_kb == 0 {
            return Err(Error::InvalidConfig("cache sizes must be non-zero"));
        }
        if !(l1d_kb < l2_kb && l2_kb < l3_kb) {
            return Err(Error::InvalidConfig("cache sizes must strictly increase"));
        }
        Ok(CacheHierarchy {
            l1d_kb,
            l2_kb,
            l3_kb,
            l2_latency_cycles: 12.0,
            l3_latency_cycles: 30.0,
            dram_latency_ns: 65.0,
        })
    }

    /// L1 data capacity per core in KB.
    pub fn l1d_kb(&self) -> u32 {
        self.l1d_kb
    }

    /// L2 capacity per core in KB.
    pub fn l2_kb(&self) -> u32 {
        self.l2_kb
    }

    /// Shared L3 capacity in KB.
    pub fn l3_kb(&self) -> u32 {
        self.l3_kb
    }

    /// L2 hit latency (cycles).
    pub fn l2_latency_cycles(&self) -> f64 {
        self.l2_latency_cycles
    }

    /// L3 hit latency (cycles).
    pub fn l3_latency_cycles(&self) -> f64 {
        self.l3_latency_cycles
    }

    /// DRAM latency (ns).
    pub fn dram_latency_ns(&self) -> f64 {
        self.dram_latency_ns
    }

    /// Computes the access profile for a workload with the given working
    /// set (`footprint_kb`) and temporal `locality` in `[0, 1]`.
    ///
    /// Misses at each level follow a capacity model: the fraction of the
    /// working set that does not fit misses, attenuated by locality (hot
    /// subsets get re-referenced before eviction).
    pub fn profile(&self, footprint_kb: f64, locality: f64) -> AccessProfile {
        let locality = locality.clamp(0.0, 1.0);
        let footprint = footprint_kb.max(1.0);
        let miss = |capacity_kb: u32| -> f64 {
            let cap = capacity_kb as f64;
            if footprint <= cap {
                // Tiny compulsory-miss floor even for fitting sets.
                0.001
            } else {
                let capacity_miss = 1.0 - cap / footprint;
                (capacity_miss * (1.0 - 0.85 * locality)).clamp(0.001, 1.0)
            }
        };
        let m1 = miss(self.l1d_kb);
        let m2 = miss(self.l2_kb);
        let m3 = miss(self.l3_kb);
        AccessProfile {
            l1_miss: m1,
            l2_miss: m2,
            l3_miss: m3,
        }
    }
}

/// Per-level conditional miss ratios for one workload (each conditioned on
/// missing the previous level), plus helpers for the absolute fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessProfile {
    /// P(miss L1).
    pub l1_miss: f64,
    /// P(miss L2 | miss L1).
    pub l2_miss: f64,
    /// P(miss L3 | miss L2).
    pub l3_miss: f64,
}

impl AccessProfile {
    /// Fraction of memory accesses that reach the LLC
    /// (= `cache-references` per access).
    pub fn llc_reference_rate(&self) -> f64 {
        self.l1_miss * self.l2_miss
    }

    /// Fraction of memory accesses that miss the LLC and go to DRAM
    /// (= `cache-misses` per access).
    pub fn llc_miss_rate(&self) -> f64 {
        self.l1_miss * self.l2_miss * self.l3_miss
    }

    /// Average stall cycles per memory access, assuming `overlap` of the
    /// latency is hidden by out-of-order execution (0 = fully exposed,
    /// 1 = fully hidden).
    pub fn stall_cycles_per_access(
        &self,
        hierarchy: &CacheHierarchy,
        core_ghz: f64,
        overlap: f64,
    ) -> f64 {
        let exposed = (1.0 - overlap).clamp(0.0, 1.0);
        let l2 = self.l1_miss * (1.0 - self.l2_miss) * hierarchy.l2_latency_cycles();
        let l3 = self.llc_reference_rate() * (1.0 - self.l3_miss) * hierarchy.l3_latency_cycles();
        let dram = self.llc_miss_rate() * hierarchy.dram_latency_ns() * core_ghz;
        (l2 + l3 + dram) * exposed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i3_caches() -> CacheHierarchy {
        // Table 1: L1 64 KB/core (32 KB data side), L2 256 KB/core, L3 3 MB.
        CacheHierarchy::new(32, 256, 3072).unwrap()
    }

    #[test]
    fn validation() {
        assert!(CacheHierarchy::new(0, 256, 3072).is_err());
        assert!(CacheHierarchy::new(256, 256, 3072).is_err());
        assert!(CacheHierarchy::new(512, 256, 3072).is_err());
        assert!(i3_caches().l1d_kb() == 32);
    }

    #[test]
    fn fitting_working_set_barely_misses() {
        let p = i3_caches().profile(16.0, 0.5);
        assert!(p.l1_miss <= 0.001 + 1e-12);
        assert!(p.llc_miss_rate() < 1e-6);
    }

    #[test]
    fn miss_rates_grow_with_footprint() {
        let h = i3_caches();
        let small = h.profile(64.0, 0.3);
        let large = h.profile(65536.0, 0.3);
        assert!(large.l1_miss > small.l1_miss);
        assert!(large.llc_miss_rate() > small.llc_miss_rate());
        assert!(large.llc_miss_rate() > 0.1, "64 MB set thrashes a 3 MB LLC");
    }

    #[test]
    fn locality_reduces_misses() {
        let h = i3_caches();
        let stream = h.profile(8192.0, 0.0);
        let hot = h.profile(8192.0, 0.9);
        assert!(hot.l1_miss < stream.l1_miss);
        assert!(hot.llc_miss_rate() < stream.llc_miss_rate());
    }

    #[test]
    fn hierarchy_ordering_of_rates() {
        let p = i3_caches().profile(4096.0, 0.4);
        // Absolute rates must be a decreasing chain.
        assert!(p.l1_miss >= p.llc_reference_rate());
        assert!(p.llc_reference_rate() >= p.llc_miss_rate());
        assert!(p.llc_miss_rate() > 0.0);
    }

    #[test]
    fn dram_stalls_scale_with_frequency() {
        let h = i3_caches();
        let p = h.profile(65536.0, 0.0);
        let slow = p.stall_cycles_per_access(&h, 1.6, 0.6);
        let fast = p.stall_cycles_per_access(&h, 3.3, 0.6);
        assert!(fast > slow, "memory wall: higher clock, more stall cycles");
    }

    #[test]
    fn overlap_hides_latency() {
        let h = i3_caches();
        let p = h.profile(65536.0, 0.0);
        let exposed = p.stall_cycles_per_access(&h, 3.3, 0.0);
        let hidden = p.stall_cycles_per_access(&h, 3.3, 1.0);
        assert!(exposed > 0.0);
        assert_eq!(hidden, 0.0);
    }
}
