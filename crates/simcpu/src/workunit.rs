//! Workload descriptions as the CPU sees them: an instruction mix, a
//! memory footprint/locality pair and a duty cycle. The `workloads` crate
//! composes these into full applications (stress grids, SPECjbb-like
//! phases, …); `simcpu` only needs the per-slice characteristics.

use crate::{Error, Result};

/// The characteristics of the instruction stream a thread wants to run.
///
/// All `*_ratio` fields are fractions of retired instructions and must sum
/// to at most 1; the remainder is plain integer ALU work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkUnit {
    mem_ratio: f64,
    branch_ratio: f64,
    fp_ratio: f64,
    branch_miss_rate: f64,
    footprint_kb: f64,
    locality: f64,
    base_ipc: f64,
    intensity: f64,
}

impl WorkUnit {
    /// Creates a fully-specified work unit.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when ratios are outside `[0, 1]`, their sum
    /// exceeds 1, `base_ipc` is non-positive, or `footprint_kb` is
    /// negative.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        mem_ratio: f64,
        branch_ratio: f64,
        fp_ratio: f64,
        branch_miss_rate: f64,
        footprint_kb: f64,
        locality: f64,
        base_ipc: f64,
        intensity: f64,
    ) -> Result<WorkUnit> {
        let in_unit = |v: f64| (0.0..=1.0).contains(&v) && v.is_finite();
        if !in_unit(mem_ratio) || !in_unit(branch_ratio) || !in_unit(fp_ratio) {
            return Err(Error::InvalidConfig(
                "instruction mix ratios must be in [0, 1]",
            ));
        }
        if mem_ratio + branch_ratio + fp_ratio > 1.0 + 1e-9 {
            return Err(Error::InvalidConfig(
                "instruction mix ratios must sum to <= 1",
            ));
        }
        if !in_unit(branch_miss_rate) {
            return Err(Error::InvalidConfig("branch miss rate must be in [0, 1]"));
        }
        if !in_unit(locality) {
            return Err(Error::InvalidConfig("locality must be in [0, 1]"));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(base_ipc > 0.0) || base_ipc > 8.0 {
            return Err(Error::InvalidConfig("base ipc must be in (0, 8]"));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(footprint_kb >= 0.0) || !footprint_kb.is_finite() {
            return Err(Error::InvalidConfig("footprint must be non-negative"));
        }
        if !in_unit(intensity) {
            return Err(Error::InvalidConfig("intensity must be in [0, 1]"));
        }
        Ok(WorkUnit {
            mem_ratio,
            branch_ratio,
            fp_ratio,
            branch_miss_rate,
            footprint_kb,
            locality,
            base_ipc,
            intensity,
        })
    }

    /// A compute-bound kernel: tiny footprint, high ILP, few memory ops.
    /// `intensity` is the duty cycle in `[0, 1]` (clamped).
    pub fn cpu_intensive(intensity: f64) -> WorkUnit {
        WorkUnit::new(
            0.08,
            0.15,
            0.20,
            0.01,
            16.0,
            0.95,
            2.6,
            intensity.clamp(0.0, 1.0),
        )
        .expect("hardcoded parameters are valid")
    }

    /// A memory-streaming kernel: large footprint, low locality, lots of
    /// loads/stores. `footprint_kb` sets the working set.
    pub fn memory_intensive(footprint_kb: f64, intensity: f64) -> WorkUnit {
        WorkUnit::new(
            0.45,
            0.10,
            0.05,
            0.02,
            footprint_kb.max(1.0),
            0.10,
            1.8,
            intensity.clamp(0.0, 1.0),
        )
        .expect("hardcoded parameters are valid")
    }

    /// A balanced mix between the two extremes; `mem_weight` in `[0, 1]`
    /// slides from compute-bound (0) to memory-bound (1).
    pub fn mixed(mem_weight: f64, footprint_kb: f64, intensity: f64) -> WorkUnit {
        let w = mem_weight.clamp(0.0, 1.0);
        WorkUnit::new(
            0.08 + w * (0.45 - 0.08),
            0.15 - w * 0.05,
            0.20 - w * 0.15,
            0.01 + w * 0.01,
            footprint_kb.max(1.0),
            0.95 - w * 0.85,
            2.6 - w * 0.8,
            intensity.clamp(0.0, 1.0),
        )
        .expect("interpolated parameters are valid")
    }

    /// Fraction of instructions that touch memory.
    pub fn mem_ratio(&self) -> f64 {
        self.mem_ratio
    }

    /// Fraction of instructions that are branches.
    pub fn branch_ratio(&self) -> f64 {
        self.branch_ratio
    }

    /// Fraction of instructions that are floating-point.
    pub fn fp_ratio(&self) -> f64 {
        self.fp_ratio
    }

    /// Misprediction rate among branches.
    pub fn branch_miss_rate(&self) -> f64 {
        self.branch_miss_rate
    }

    /// Working-set size in KB.
    pub fn footprint_kb(&self) -> f64 {
        self.footprint_kb
    }

    /// Temporal locality in `[0, 1]`.
    pub fn locality(&self) -> f64 {
        self.locality
    }

    /// Ideal (stall-free, single-thread) instructions per cycle.
    pub fn base_ipc(&self) -> f64 {
        self.base_ipc
    }

    /// Duty cycle in `[0, 1]`: fraction of the slice actually executing.
    pub fn intensity(&self) -> f64 {
        self.intensity
    }

    /// Returns a copy with a different intensity (clamped to `[0, 1]`).
    pub fn with_intensity(mut self, intensity: f64) -> WorkUnit {
        self.intensity = intensity.clamp(0.0, 1.0);
        self
    }

    /// Returns a copy with a different footprint (min 1 KB).
    pub fn with_footprint_kb(mut self, footprint_kb: f64) -> WorkUnit {
        self.footprint_kb = footprint_kb.max(1.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_mixes() {
        assert!(WorkUnit::new(0.6, 0.3, 0.3, 0.0, 1.0, 0.5, 1.0, 1.0).is_err());
        assert!(WorkUnit::new(-0.1, 0.0, 0.0, 0.0, 1.0, 0.5, 1.0, 1.0).is_err());
        assert!(WorkUnit::new(0.1, 0.1, 0.1, 1.5, 1.0, 0.5, 1.0, 1.0).is_err());
        assert!(WorkUnit::new(0.1, 0.1, 0.1, 0.0, 1.0, 2.0, 1.0, 1.0).is_err());
        assert!(WorkUnit::new(0.1, 0.1, 0.1, 0.0, 1.0, 0.5, 0.0, 1.0).is_err());
        assert!(WorkUnit::new(0.1, 0.1, 0.1, 0.0, 1.0, 0.5, 9.0, 1.0).is_err());
        assert!(WorkUnit::new(0.1, 0.1, 0.1, 0.0, -1.0, 0.5, 1.0, 1.0).is_err());
        assert!(WorkUnit::new(0.1, 0.1, 0.1, 0.0, 1.0, 0.5, 1.0, 1.1).is_err());
    }

    #[test]
    fn presets_are_distinct() {
        let cpu = WorkUnit::cpu_intensive(1.0);
        let mem = WorkUnit::memory_intensive(65536.0, 1.0);
        assert!(cpu.mem_ratio() < mem.mem_ratio());
        assert!(cpu.locality() > mem.locality());
        assert!(cpu.base_ipc() > mem.base_ipc());
        assert!(cpu.footprint_kb() < mem.footprint_kb());
    }

    #[test]
    fn mixed_interpolates_monotonically() {
        let a = WorkUnit::mixed(0.0, 1024.0, 1.0);
        let b = WorkUnit::mixed(0.5, 1024.0, 1.0);
        let c = WorkUnit::mixed(1.0, 1024.0, 1.0);
        assert!(a.mem_ratio() < b.mem_ratio() && b.mem_ratio() < c.mem_ratio());
        assert!(a.locality() > b.locality() && b.locality() > c.locality());
        // End points line up with the named presets' mixes.
        assert!((a.mem_ratio() - WorkUnit::cpu_intensive(1.0).mem_ratio()).abs() < 1e-12);
        assert!((c.mem_ratio() - WorkUnit::memory_intensive(1.0, 1.0).mem_ratio()).abs() < 1e-12);
    }

    #[test]
    fn intensity_clamped() {
        assert_eq!(WorkUnit::cpu_intensive(7.0).intensity(), 1.0);
        assert_eq!(WorkUnit::cpu_intensive(-1.0).intensity(), 0.0);
        let w = WorkUnit::cpu_intensive(1.0).with_intensity(0.25);
        assert_eq!(w.intensity(), 0.25);
    }

    #[test]
    fn with_footprint_floors_at_1kb() {
        let w = WorkUnit::cpu_intensive(1.0).with_footprint_kb(0.0);
        assert_eq!(w.footprint_kb(), 1.0);
    }
}
