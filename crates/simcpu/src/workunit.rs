//! Workload descriptions as the CPU sees them: an instruction mix, a
//! memory footprint/locality pair and a duty cycle. The `workloads` crate
//! composes these into full applications (stress grids, SPECjbb-like
//! phases, …); `simcpu` only needs the per-slice characteristics.

use crate::{Error, Result};

/// The characteristics of the instruction stream a thread wants to run.
///
/// All `*_ratio` fields are fractions of retired instructions and must sum
/// to at most 1; the remainder is plain integer ALU work. Construct one
/// with [`WorkUnit::builder`] or a named preset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkUnit {
    mem_ratio: f64,
    branch_ratio: f64,
    fp_ratio: f64,
    branch_miss_rate: f64,
    footprint_kb: f64,
    locality: f64,
    base_ipc: f64,
    intensity: f64,
}

/// Builder for [`WorkUnit`]. Defaults describe a tiny pure-ALU loop:
/// no memory/branch/FP instructions, 1 KB footprint, perfect locality,
/// IPC 1, full duty cycle. Validation happens in [`build`].
///
/// [`build`]: WorkUnitBuilder::build
#[derive(Debug, Clone, Copy)]
pub struct WorkUnitBuilder {
    mem_ratio: f64,
    branch_ratio: f64,
    fp_ratio: f64,
    branch_miss_rate: f64,
    footprint_kb: f64,
    locality: f64,
    base_ipc: f64,
    intensity: f64,
}

impl Default for WorkUnitBuilder {
    fn default() -> WorkUnitBuilder {
        WorkUnitBuilder {
            mem_ratio: 0.0,
            branch_ratio: 0.0,
            fp_ratio: 0.0,
            branch_miss_rate: 0.0,
            footprint_kb: 1.0,
            locality: 1.0,
            base_ipc: 1.0,
            intensity: 1.0,
        }
    }
}

impl WorkUnitBuilder {
    /// Fraction of instructions that touch memory.
    pub fn mem_ratio(mut self, v: f64) -> WorkUnitBuilder {
        self.mem_ratio = v;
        self
    }

    /// Fraction of instructions that are branches.
    pub fn branch_ratio(mut self, v: f64) -> WorkUnitBuilder {
        self.branch_ratio = v;
        self
    }

    /// Fraction of instructions that are floating-point.
    pub fn fp_ratio(mut self, v: f64) -> WorkUnitBuilder {
        self.fp_ratio = v;
        self
    }

    /// Misprediction rate among branches.
    pub fn branch_miss_rate(mut self, v: f64) -> WorkUnitBuilder {
        self.branch_miss_rate = v;
        self
    }

    /// Working-set size in KB.
    pub fn footprint_kb(mut self, v: f64) -> WorkUnitBuilder {
        self.footprint_kb = v;
        self
    }

    /// Temporal locality in `[0, 1]`.
    pub fn locality(mut self, v: f64) -> WorkUnitBuilder {
        self.locality = v;
        self
    }

    /// Ideal (stall-free, single-thread) instructions per cycle.
    pub fn base_ipc(mut self, v: f64) -> WorkUnitBuilder {
        self.base_ipc = v;
        self
    }

    /// Duty cycle in `[0, 1]`: fraction of the slice actually executing.
    pub fn intensity(mut self, v: f64) -> WorkUnitBuilder {
        self.intensity = v;
        self
    }

    /// Validates the accumulated parameters and produces the work unit.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when ratios are outside `[0, 1]`, their sum
    /// exceeds 1, `base_ipc` is non-positive, or `footprint_kb` is
    /// negative.
    pub fn build(self) -> Result<WorkUnit> {
        let WorkUnitBuilder {
            mem_ratio,
            branch_ratio,
            fp_ratio,
            branch_miss_rate,
            footprint_kb,
            locality,
            base_ipc,
            intensity,
        } = self;
        let in_unit = |v: f64| (0.0..=1.0).contains(&v) && v.is_finite();
        if !in_unit(mem_ratio) || !in_unit(branch_ratio) || !in_unit(fp_ratio) {
            return Err(Error::InvalidConfig(
                "instruction mix ratios must be in [0, 1]",
            ));
        }
        if mem_ratio + branch_ratio + fp_ratio > 1.0 + 1e-9 {
            return Err(Error::InvalidConfig(
                "instruction mix ratios must sum to <= 1",
            ));
        }
        if !in_unit(branch_miss_rate) {
            return Err(Error::InvalidConfig("branch miss rate must be in [0, 1]"));
        }
        if !in_unit(locality) {
            return Err(Error::InvalidConfig("locality must be in [0, 1]"));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(base_ipc > 0.0) || base_ipc > 8.0 {
            return Err(Error::InvalidConfig("base ipc must be in (0, 8]"));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(footprint_kb >= 0.0) || !footprint_kb.is_finite() {
            return Err(Error::InvalidConfig("footprint must be non-negative"));
        }
        if !in_unit(intensity) {
            return Err(Error::InvalidConfig("intensity must be in [0, 1]"));
        }
        Ok(WorkUnit {
            mem_ratio,
            branch_ratio,
            fp_ratio,
            branch_miss_rate,
            footprint_kb,
            locality,
            base_ipc,
            intensity,
        })
    }
}

impl WorkUnit {
    /// Starts a builder with pure-ALU defaults; see [`WorkUnitBuilder`].
    pub fn builder() -> WorkUnitBuilder {
        WorkUnitBuilder::default()
    }

    /// A compute-bound kernel: tiny footprint, high ILP, few memory ops.
    /// `intensity` is the duty cycle in `[0, 1]` (clamped).
    pub fn cpu_intensive(intensity: f64) -> WorkUnit {
        WorkUnit::builder()
            .mem_ratio(0.08)
            .branch_ratio(0.15)
            .fp_ratio(0.20)
            .branch_miss_rate(0.01)
            .footprint_kb(16.0)
            .locality(0.95)
            .base_ipc(2.6)
            .intensity(intensity.clamp(0.0, 1.0))
            .build()
            .expect("hardcoded parameters are valid")
    }

    /// A memory-streaming kernel: large footprint, low locality, lots of
    /// loads/stores. `footprint_kb` sets the working set.
    pub fn memory_intensive(footprint_kb: f64, intensity: f64) -> WorkUnit {
        WorkUnit::builder()
            .mem_ratio(0.45)
            .branch_ratio(0.10)
            .fp_ratio(0.05)
            .branch_miss_rate(0.02)
            .footprint_kb(footprint_kb.max(1.0))
            .locality(0.10)
            .base_ipc(1.8)
            .intensity(intensity.clamp(0.0, 1.0))
            .build()
            .expect("hardcoded parameters are valid")
    }

    /// A balanced mix between the two extremes; `mem_weight` in `[0, 1]`
    /// slides from compute-bound (0) to memory-bound (1).
    pub fn mixed(mem_weight: f64, footprint_kb: f64, intensity: f64) -> WorkUnit {
        let w = mem_weight.clamp(0.0, 1.0);
        WorkUnit::builder()
            .mem_ratio(0.08 + w * (0.45 - 0.08))
            .branch_ratio(0.15 - w * 0.05)
            .fp_ratio(0.20 - w * 0.15)
            .branch_miss_rate(0.01 + w * 0.01)
            .footprint_kb(footprint_kb.max(1.0))
            .locality(0.95 - w * 0.85)
            .base_ipc(2.6 - w * 0.8)
            .intensity(intensity.clamp(0.0, 1.0))
            .build()
            .expect("interpolated parameters are valid")
    }

    /// Fraction of instructions that touch memory.
    pub fn mem_ratio(&self) -> f64 {
        self.mem_ratio
    }

    /// Fraction of instructions that are branches.
    pub fn branch_ratio(&self) -> f64 {
        self.branch_ratio
    }

    /// Fraction of instructions that are floating-point.
    pub fn fp_ratio(&self) -> f64 {
        self.fp_ratio
    }

    /// Misprediction rate among branches.
    pub fn branch_miss_rate(&self) -> f64 {
        self.branch_miss_rate
    }

    /// Working-set size in KB.
    pub fn footprint_kb(&self) -> f64 {
        self.footprint_kb
    }

    /// Temporal locality in `[0, 1]`.
    pub fn locality(&self) -> f64 {
        self.locality
    }

    /// Ideal (stall-free, single-thread) instructions per cycle.
    pub fn base_ipc(&self) -> f64 {
        self.base_ipc
    }

    /// Duty cycle in `[0, 1]`: fraction of the slice actually executing.
    pub fn intensity(&self) -> f64 {
        self.intensity
    }

    /// Returns a copy with a different intensity (clamped to `[0, 1]`).
    pub fn with_intensity(mut self, intensity: f64) -> WorkUnit {
        self.intensity = intensity.clamp(0.0, 1.0);
        self
    }

    /// Returns a copy with a different footprint (min 1 KB).
    pub fn with_footprint_kb(mut self, footprint_kb: f64) -> WorkUnit {
        self.footprint_kb = footprint_kb.max(1.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shorthand for the tests below: full positional spec through the
    /// builder, in the field order of [`WorkUnit`].
    fn unit(
        (m, b, f, bm, fp, loc, ipc, int): (f64, f64, f64, f64, f64, f64, f64, f64),
    ) -> Result<WorkUnit> {
        WorkUnit::builder()
            .mem_ratio(m)
            .branch_ratio(b)
            .fp_ratio(f)
            .branch_miss_rate(bm)
            .footprint_kb(fp)
            .locality(loc)
            .base_ipc(ipc)
            .intensity(int)
            .build()
    }

    #[test]
    fn validation_rejects_bad_mixes() {
        assert!(unit((0.6, 0.3, 0.3, 0.0, 1.0, 0.5, 1.0, 1.0)).is_err());
        assert!(unit((-0.1, 0.0, 0.0, 0.0, 1.0, 0.5, 1.0, 1.0)).is_err());
        assert!(unit((0.1, 0.1, 0.1, 1.5, 1.0, 0.5, 1.0, 1.0)).is_err());
        assert!(unit((0.1, 0.1, 0.1, 0.0, 1.0, 2.0, 1.0, 1.0)).is_err());
        assert!(unit((0.1, 0.1, 0.1, 0.0, 1.0, 0.5, 0.0, 1.0)).is_err());
        assert!(unit((0.1, 0.1, 0.1, 0.0, 1.0, 0.5, 9.0, 1.0)).is_err());
        assert!(unit((0.1, 0.1, 0.1, 0.0, -1.0, 0.5, 1.0, 1.0)).is_err());
        assert!(unit((0.1, 0.1, 0.1, 0.0, 1.0, 0.5, 1.0, 1.1)).is_err());
    }

    #[test]
    fn builder_defaults_are_a_valid_alu_loop() {
        let w = WorkUnit::builder().build().expect("defaults are valid");
        assert_eq!(w.mem_ratio(), 0.0);
        assert_eq!(w.branch_ratio(), 0.0);
        assert_eq!(w.fp_ratio(), 0.0);
        assert_eq!(w.footprint_kb(), 1.0);
        assert_eq!(w.locality(), 1.0);
        assert_eq!(w.base_ipc(), 1.0);
        assert_eq!(w.intensity(), 1.0);
    }

    #[test]
    fn builder_sets_each_field() {
        let w = unit((0.1, 0.2, 0.3, 0.05, 64.0, 0.7, 2.5, 0.5)).expect("valid");
        assert_eq!(w.mem_ratio(), 0.1);
        assert_eq!(w.branch_ratio(), 0.2);
        assert_eq!(w.fp_ratio(), 0.3);
        assert_eq!(w.branch_miss_rate(), 0.05);
        assert_eq!(w.footprint_kb(), 64.0);
        assert_eq!(w.locality(), 0.7);
        assert_eq!(w.base_ipc(), 2.5);
        assert_eq!(w.intensity(), 0.5);
    }

    #[test]
    fn presets_are_distinct() {
        let cpu = WorkUnit::cpu_intensive(1.0);
        let mem = WorkUnit::memory_intensive(65536.0, 1.0);
        assert!(cpu.mem_ratio() < mem.mem_ratio());
        assert!(cpu.locality() > mem.locality());
        assert!(cpu.base_ipc() > mem.base_ipc());
        assert!(cpu.footprint_kb() < mem.footprint_kb());
    }

    #[test]
    fn mixed_interpolates_monotonically() {
        let a = WorkUnit::mixed(0.0, 1024.0, 1.0);
        let b = WorkUnit::mixed(0.5, 1024.0, 1.0);
        let c = WorkUnit::mixed(1.0, 1024.0, 1.0);
        assert!(a.mem_ratio() < b.mem_ratio() && b.mem_ratio() < c.mem_ratio());
        assert!(a.locality() > b.locality() && b.locality() > c.locality());
        // End points line up with the named presets' mixes.
        assert!((a.mem_ratio() - WorkUnit::cpu_intensive(1.0).mem_ratio()).abs() < 1e-12);
        assert!((c.mem_ratio() - WorkUnit::memory_intensive(1.0, 1.0).mem_ratio()).abs() < 1e-12);
    }

    #[test]
    fn intensity_clamped() {
        assert_eq!(WorkUnit::cpu_intensive(7.0).intensity(), 1.0);
        assert_eq!(WorkUnit::cpu_intensive(-1.0).intensity(), 0.0);
        let w = WorkUnit::cpu_intensive(1.0).with_intensity(0.25);
        assert_eq!(w.intensity(), 0.25);
    }

    #[test]
    fn with_footprint_floors_at_1kb() {
        let w = WorkUnit::cpu_intensive(1.0).with_footprint_kb(0.0);
        assert_eq!(w.footprint_kb(), 1.0);
    }
}
