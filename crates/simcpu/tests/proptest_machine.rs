//! Property-based tests for the CPU simulator: counter-chain invariants,
//! power bounds and monotonicity over arbitrary workloads.

use proptest::prelude::*;
use simcpu::machine::Machine;
use simcpu::presets;
use simcpu::units::Nanos;
use simcpu::workunit::WorkUnit;

/// An arbitrary-but-valid work unit.
fn work_unit() -> impl Strategy<Value = WorkUnit> {
    (
        0.0f64..0.5,       // mem
        0.0f64..0.3,       // branch
        0.0f64..0.2,       // fp
        0.0f64..0.2,       // branch miss rate
        1.0f64..524_288.0, // footprint KB
        0.0f64..1.0,       // locality
        0.5f64..4.0,       // base ipc
        0.0f64..1.0,       // intensity
    )
        .prop_map(|(m, b, f, bm, fp, loc, ipc, int)| {
            WorkUnit::builder()
                .mem_ratio(m)
                .branch_ratio(b)
                .fp_ratio(f)
                .branch_miss_rate(bm)
                .footprint_kb(fp)
                .locality(loc)
                .base_ipc(ipc)
                .intensity(int)
                .build()
                .expect("ranges are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn counter_chain_invariants(w in work_unit()) {
        let mut m = Machine::new(presets::intel_i3_2120());
        let r = m.tick(&[Some(&w), None, None, None], 10_000_000);
        let d = &r.deltas[0];
        // Hierarchy: accesses ≥ L1 misses ≥ LLC refs ≥ LLC misses.
        prop_assert!(d.l1d_accesses >= d.l1d_misses);
        prop_assert!(d.l1d_misses >= d.cache_references);
        prop_assert!(d.cache_references >= d.cache_misses);
        // Sub-populations of instructions.
        prop_assert!(d.branch_instructions <= d.instructions);
        prop_assert!(d.branch_misses <= d.branch_instructions);
        prop_assert!(d.fp_instructions <= d.instructions);
        prop_assert!(d.l1d_accesses <= d.instructions);
        // Cycles bounded by the frequency budget.
        let budget = m.pstates().min().frequency().cycles_over(Nanos(10_000_000));
        prop_assert!(d.cycles <= budget);
    }

    #[test]
    fn power_bounded_between_idle_and_ceiling(w in work_unit()) {
        let mut m = Machine::new(presets::intel_i3_2120());
        for c in 0..2 {
            m.set_frequency(c, simcpu::MegaHertz(3300)).expect("nominal");
        }
        let r = m.tick(&[Some(&w), Some(&w), Some(&w), Some(&w)], 10_000_000);
        let p = r.power.as_f64();
        prop_assert!(p >= 31.0, "above the idle floor: {p}");
        prop_assert!(p <= 110.0, "below platform + TDP headroom: {p}");
        prop_assert!(r.package_power.as_f64() <= p);
    }

    #[test]
    fn power_monotone_in_intensity(w in work_unit(), lo in 0.0f64..0.5, delta in 0.1f64..0.5) {
        let mut m1 = Machine::new(presets::intel_i3_2120());
        let mut m2 = Machine::new(presets::intel_i3_2120());
        let weak = w.with_intensity(lo);
        let strong = w.with_intensity(lo + delta);
        let p1 = m1.tick(&[Some(&weak), None, None, None], 10_000_000).power;
        let p2 = m2.tick(&[Some(&strong), None, None, None], 10_000_000).power;
        prop_assert!(p2.as_f64() >= p1.as_f64() - 1e-9, "{p1} -> {p2}");
    }

    #[test]
    fn energy_equals_integrated_power(w in work_unit(), ticks in 1usize..20) {
        let mut m = Machine::new(presets::intel_i3_2120());
        let mut sum = 0.0;
        for _ in 0..ticks {
            let r = m.tick(&[Some(&w), None, None, None], 5_000_000);
            sum += r.power.as_f64() * 0.005;
        }
        prop_assert!((m.machine_energy().as_f64() - sum).abs() < 1e-6 * (1.0 + sum));
    }

    #[test]
    fn determinism_same_inputs_same_outputs(w in work_unit()) {
        let run = || {
            let mut m = Machine::new(presets::xeon_smt_turbo());
            let mut out = Vec::new();
            for i in 0..5 {
                let assign: Vec<Option<&WorkUnit>> = (0..8)
                    .map(|c| if c % 2 == i % 2 { Some(&w) } else { None })
                    .collect();
                let r = m.tick(&assign, 2_000_000);
                out.push((r.power, r.deltas));
            }
            out
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn smt_corun_power_below_two_cores(w in work_unit()) {
        prop_assume!(w.intensity() > 0.2);
        let mut corun = Machine::new(presets::intel_i3_2120());
        let mut spread = Machine::new(presets::intel_i3_2120());
        // Same two threads: siblings (cpu0+1) vs separate cores (cpu0+2).
        let pc = corun.tick(&[Some(&w), Some(&w), None, None], 10_000_000).power;
        let ps = spread.tick(&[Some(&w), None, Some(&w), None], 10_000_000).power;
        prop_assert!(pc.as_f64() <= ps.as_f64() + 1e-9, "corun {pc} vs spread {ps}");
    }
}
