//! Dense row-major matrices with just enough linear algebra for regression:
//! products, transpose, LU solve with partial pivoting, Cholesky and
//! Householder QR factorizations.

use crate::{Error, Result};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64`.
///
/// ```
/// use mathkit::matrix::Matrix;
///
/// # fn main() -> Result<(), mathkit::Error> {
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let b = a.transpose();
/// assert_eq!(b[(0, 1)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(r, c)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { ", …" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a matrix of zeros.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Matrix> {
        if rows == 0 || cols == 0 {
            return Err(Error::Empty("matrix dimension"));
        }
        Ok(Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// Creates the `n`-by-`n` identity matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] if `n` is zero.
    pub fn identity(n: usize) -> Result<Matrix> {
        let mut m = Matrix::zeros(n, n)?;
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        Ok(m)
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] for no rows / empty rows and
    /// [`Error::Ragged`] when rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Matrix> {
        if rows.is_empty() {
            return Err(Error::Empty("rows"));
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(Error::Empty("columns"));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(Error::Ragged {
                    row: i,
                    expected: cols,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from an already-flat row-major buffer, avoiding the
    /// per-row `Vec` allocations of [`Matrix::from_rows`] — the constructor
    /// the sampling pipeline uses to assemble design matrices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] for zero dimensions and [`Error::Ragged`]
    /// when `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Result<Matrix> {
        if rows == 0 || cols == 0 {
            return Err(Error::Empty("matrix dimension"));
        }
        if data.len() != rows * cols {
            return Err(Error::Ragged {
                row: data.len() / cols,
                expected: cols,
                found: data.len() - (rows - 1) * cols,
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a single-column matrix from a slice.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] when `v` is empty.
    pub fn column(v: &[f64]) -> Result<Matrix> {
        if v.is_empty() {
            return Err(Error::Empty("column vector"));
        }
        Ok(Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut data = vec![0.0; self.data.len()];
        for r in 0..self.rows {
            let row = self.row(r);
            for (c, &v) in row.iter().enumerate() {
                data[c * self.rows + r] = v;
            }
        }
        Matrix {
            rows: self.cols,
            cols: self.rows,
            data,
        }
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] unless `self.cols == rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(Error::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        // Cache-friendly ikj order over contiguous row slices: the inner
        // loop streams one row of `rhs` and one row of `out`, no strided
        // access and no per-element bounds assertions.
        let mut out = Matrix::zeros(self.rows, rhs.cols)?;
        let width = rhs.cols;
        for r in 0..self.rows {
            let out_row = &mut out.data[r * width..(r + 1) * width];
            for (k, &v) in self.row(r).iter().enumerate() {
                if v == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * width..(k + 1) * width];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += v * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] unless `self.cols == v.len()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(Error::DimensionMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// `Aᵀ A`, the Gram matrix — the core of the normal equations.
    ///
    /// Accumulated row-by-row (rank-1 updates on the upper triangle) so a
    /// tall design matrix is streamed once, contiguously, instead of the
    /// naive column-dot-column walk that strides the full matrix `p²/2`
    /// times. Per-entry addition order is unchanged (ascending row index),
    /// so results are bit-identical to the naive form.
    pub fn gram(&self) -> Matrix {
        let p = self.cols;
        let mut data = vec![0.0; p * p];
        for r in 0..self.rows {
            let row = self.row(r);
            for (i, &vi) in row.iter().enumerate() {
                if vi == 0.0 {
                    continue;
                }
                let g_row = &mut data[i * p..(i + 1) * p];
                for (j, &vj) in row.iter().enumerate().skip(i) {
                    g_row[j] += vi * vj;
                }
            }
        }
        // Mirror the upper triangle.
        for i in 1..p {
            for j in 0..i {
                data[i * p + j] = data[j * p + i];
            }
        }
        Matrix {
            rows: p,
            cols: p,
            data,
        }
    }

    /// `Aᵀ y` for a vector `y`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] unless `self.rows == y.len()`.
    pub fn tr_matvec(&self, y: &[f64]) -> Result<Vec<f64>> {
        if self.rows != y.len() {
            return Err(Error::DimensionMismatch {
                op: "tr_matvec",
                lhs: self.shape(),
                rhs: (y.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let w = y[r];
            for c in 0..self.cols {
                out[c] += self[(r, c)] * w;
            }
        }
        Ok(out)
    }

    /// Solves `self * x = b` by LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] for a non-square system or wrong `b`
    /// length; [`Error::Singular`] when a pivot collapses below `1e-12`
    /// relative tolerance.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if self.rows != self.cols {
            return Err(Error::DimensionMismatch {
                op: "solve (square required)",
                lhs: self.shape(),
                rhs: (b.len(), 1),
            });
        }
        if b.len() != self.rows {
            return Err(Error::DimensionMismatch {
                op: "solve rhs",
                lhs: self.shape(),
                rhs: (b.len(), 1),
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        let scale = a.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
        let tol = 1e-12 * scale;

        for k in 0..n {
            // Partial pivot: largest magnitude in column k at/below row k.
            let mut piv = k;
            let mut best = a[k * n + k].abs();
            for r in (k + 1)..n {
                let v = a[r * n + k].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best <= tol {
                return Err(Error::Singular);
            }
            if piv != k {
                for c in 0..n {
                    a.swap(k * n + c, piv * n + c);
                }
                x.swap(k, piv);
            }
            let d = a[k * n + k];
            for r in (k + 1)..n {
                let f = a[r * n + k] / d;
                if f == 0.0 {
                    continue;
                }
                for c in k..n {
                    a[r * n + c] -= f * a[k * n + c];
                }
                x[r] -= f * x[k];
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut s = x[k];
            for c in (k + 1)..n {
                s -= a[k * n + c] * x[c];
            }
            x[k] = s / a[k * n + k];
        }
        Ok(x)
    }

    /// Cholesky factorization `self = L Lᵀ` for a symmetric
    /// positive-definite matrix; returns the lower-triangular `L`.
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] for non-square input and
    /// [`Error::NotPositiveDefinite`] when a diagonal pivot is not positive.
    pub fn cholesky(&self) -> Result<Matrix> {
        if self.rows != self.cols {
            return Err(Error::DimensionMismatch {
                op: "cholesky (square required)",
                lhs: self.shape(),
                rhs: self.shape(),
            });
        }
        let n = self.rows;
        // Relative pivot floor: exact rank deficiency leaves a pivot that is
        // rounding noise (~eps * scale) rather than exactly zero; treat it as
        // not-positive-definite so callers can fall back to pivoted LU and
        // report singularity properly.
        let max_diag = (0..n).fold(0.0_f64, |m, i| m.max(self[(i, i)].abs()));
        let floor = n as f64 * f64::EPSILON * max_diag;
        let mut l = Matrix::zeros(n, n)?;
        for i in 0..n {
            for j in 0..=i {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= floor {
                        return Err(Error::NotPositiveDefinite);
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `self * x = b` for a symmetric positive-definite matrix via
    /// Cholesky (`L Lᵀ x = b`): one factorization plus two triangular
    /// substitutions — roughly twice as fast as LU with pivoting, and the
    /// natural solver for the normal equations' Gram matrix.
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] for shape problems and
    /// [`Error::NotPositiveDefinite`] when the matrix is not SPD (callers
    /// wanting LU's broader domain should fall back to [`Matrix::solve`]).
    pub fn cholesky_solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.rows {
            return Err(Error::DimensionMismatch {
                op: "cholesky_solve rhs",
                lhs: self.shape(),
                rhs: (b.len(), 1),
            });
        }
        let l = self.cholesky()?;
        let n = self.rows;
        let mut x = b.to_vec();
        // Forward substitution: L z = b.
        for i in 0..n {
            let row = l.row(i);
            let mut s = x[i];
            for (j, &lij) in row[..i].iter().enumerate() {
                s -= lij * x[j];
            }
            x[i] = s / row[i];
        }
        // Back substitution: Lᵀ x = z (walk L by column = Lᵀ by row).
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= l[(j, i)] * x[j];
            }
            x[i] = s / l[(i, i)];
        }
        Ok(x)
    }

    /// Householder QR factorization; returns `(Q, R)` with `Q` of shape
    /// `rows × cols` (thin) and `R` upper-triangular `cols × cols`.
    ///
    /// # Errors
    ///
    /// [`Error::Underdetermined`] when `rows < cols`.
    pub fn qr(&self) -> Result<(Matrix, Matrix)> {
        let (m, n) = self.shape();
        if m < n {
            return Err(Error::Underdetermined {
                observations: m,
                parameters: n,
            });
        }
        let mut r = self.clone();
        // Accumulate Q as a product of Householder reflectors applied to I.
        let mut q = Matrix::zeros(m, m)?;
        for i in 0..m {
            q[(i, i)] = 1.0;
        }
        for k in 0..n {
            // Householder vector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += r[(i, k)] * r[(i, k)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                continue;
            }
            let alpha = if r[(k, k)] > 0.0 { -norm } else { norm };
            let mut v = vec![0.0; m];
            for i in k..m {
                v[i] = r[(i, k)];
            }
            v[k] -= alpha;
            let vnorm2: f64 = v[k..].iter().map(|x| x * x).sum();
            if vnorm2 == 0.0 {
                continue;
            }
            // R <- (I - 2 v vᵀ / |v|²) R
            for c in k..n {
                let dot: f64 = (k..m).map(|i| v[i] * r[(i, c)]).sum();
                let f = 2.0 * dot / vnorm2;
                for i in k..m {
                    r[(i, c)] -= f * v[i];
                }
            }
            // Q <- Q (I - 2 v vᵀ / |v|²)
            for row in 0..m {
                let dot: f64 = (k..m).map(|i| q[(row, i)] * v[i]).sum();
                let f = 2.0 * dot / vnorm2;
                for i in k..m {
                    q[(row, i)] -= f * v[i];
                }
            }
        }
        // Thin Q (m × n) and square R (n × n).
        let mut qt = Matrix::zeros(m, n)?;
        for i in 0..m {
            for j in 0..n {
                qt[(i, j)] = q[(i, j)];
            }
        }
        let mut rt = Matrix::zeros(n, n)?;
        for i in 0..n {
            for j in i..n {
                rt[(i, j)] = r[(i, j)];
            }
        }
        Ok((qt, rt))
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * rhs).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() <= eps
    }

    #[test]
    fn zeros_rejects_empty() {
        assert!(matches!(Matrix::zeros(0, 3), Err(Error::Empty(_))));
        assert!(matches!(Matrix::zeros(3, 0), Err(Error::Empty(_))));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let e = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(e, Error::Ragged { row: 1, .. }));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2).unwrap();
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3).unwrap();
        let b = Matrix::zeros(2, 3).unwrap();
        assert!(matches!(a.matmul(&b), Err(Error::DimensionMismatch { .. })));
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10  => x = 1, y = 3
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!(approx(x[0], 1.0, 1e-12));
        assert!(approx(x[1], 3.0, 1e-12));
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero pivot forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!(approx(x[0], 3.0, 1e-12));
        assert!(approx(x[1], 2.0, 1e-12));
    }

    #[test]
    fn solve_singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(a.solve(&[1.0, 2.0]).unwrap_err(), Error::Singular);
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let g = a.gram();
        assert_eq!(g.shape(), (2, 2));
        assert_eq!(g[(0, 1)], g[(1, 0)]);
        assert!(g[(0, 0)] > 0.0 && g[(1, 1)] > 0.0);
        // Gram = AᵀA exactly.
        let expect = a.transpose().matmul(&a).unwrap();
        assert!((&g - &expect).max_abs() < 1e-12);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]).unwrap();
        let l = a.cholesky().unwrap();
        let back = l.matmul(&l.transpose()).unwrap();
        assert!((&a - &back).max_abs() < 1e-12);
    }

    #[test]
    fn from_flat_matches_from_rows() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(a, b);
        assert!(Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_flat(0, 2, vec![]).is_err());
    }

    #[test]
    fn cholesky_solve_matches_lu() {
        // SPD system (a Gram matrix is always SPD for full-rank designs).
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 1.0],
            vec![2.0, 5.0],
            vec![4.0, 1.0],
        ])
        .unwrap();
        let g = x.gram();
        let b = [7.0, -3.0];
        let chol = g.cholesky_solve(&b).unwrap();
        let lu = g.solve(&b).unwrap();
        for (c, l) in chol.iter().zip(&lu) {
            assert!((c - l).abs() < 1e-9, "{c} vs {l}");
        }
        assert!(g.cholesky_solve(&[1.0]).is_err());
        // Indefinite input is reported, not mis-solved.
        let indef = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert_eq!(
            indef.cholesky_solve(&b).unwrap_err(),
            Error::NotPositiveDefinite
        );
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert_eq!(a.cholesky().unwrap_err(), Error::NotPositiveDefinite);
    }

    #[test]
    fn qr_reconstructs_and_r_triangular() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 9.0],
        ])
        .unwrap();
        let (q, r) = a.qr().unwrap();
        let back = q.matmul(&r).unwrap();
        assert!((&a - &back).max_abs() < 1e-9);
        for i in 1..r.rows() {
            for j in 0..i {
                assert!(r[(i, j)].abs() < 1e-12);
            }
        }
        // Q has orthonormal columns.
        let qtq = q.transpose().matmul(&q).unwrap();
        let eye = Matrix::identity(2).unwrap();
        assert!((&qtq - &eye).max_abs() < 1e-9);
    }

    #[test]
    fn qr_underdetermined_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        assert!(matches!(a.qr(), Err(Error::Underdetermined { .. })));
    }

    #[test]
    fn matvec_and_tr_matvec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.tr_matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![9.0, 12.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.tr_matvec(&[1.0]).is_err());
    }

    #[test]
    fn operators_add_sub_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert_eq!((&a + &b).row(0), &[4.0, 6.0]);
        assert_eq!((&b - &a).row(0), &[2.0, 2.0]);
        assert_eq!((&a * 2.0).row(0), &[2.0, 4.0]);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[vec![3.0, -4.0]]).unwrap();
        assert!(approx(a.norm(), 5.0, 1e-12));
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let a = Matrix::identity(3).unwrap();
        assert!(format!("{a:?}").contains("Matrix 3x3"));
    }
}
