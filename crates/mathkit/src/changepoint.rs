//! Streaming change-point detectors for drift diagnosis.
//!
//! Both detectors watch a scalar stream (for PowerAPI: the per-tick model
//! residual) and raise an alarm when its mean shifts persistently. They
//! keep O(1) state, allocate nothing per sample, and reset themselves
//! after each alarm so a single instance can track a run indefinitely.
//!
//! - [`Cusum`] is the classic two-sided cumulative-sum test: it
//!   accumulates deviations beyond a slack `k` and alarms when either
//!   side's sum crosses the threshold `h`. With Gaussian noise of
//!   standard deviation σ, `k = σ/2` and `h = 4σ…8σ` give near-zero
//!   false alarms while catching a sustained mean step of ≥ σ within a
//!   few dozen samples.
//! - [`PageHinkley`] is the Page–Hinkley variant that tracks the gap
//!   between the cumulative deviation and its running extremum — less
//!   sensitive to slow baseline wander, a good cross-check on CUSUM.
//!
//! Non-finite samples are rejected with [`Error::InvalidArgument`]
//! rather than silently poisoning the accumulated sums (the same
//! NaN-hardening stance as the rest of the crate).

use crate::{Error, Result};

/// Two-sided CUSUM detector over a stream with known target mean.
///
/// ```
/// use mathkit::changepoint::Cusum;
///
/// # fn main() -> Result<(), mathkit::Error> {
/// let mut d = Cusum::new(0.0, 0.5, 4.0)?;
/// for _ in 0..100 {
///     assert!(!d.update(0.1)?); // within slack: never alarms
/// }
/// while !d.update(2.0)? {} // sustained +2 step: alarms quickly
/// assert_eq!(d.alarms(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cusum {
    target: f64,
    k: f64,
    h: f64,
    pos: f64,
    neg: f64,
    alarms: u64,
}

impl Cusum {
    /// Builds a detector around `target` with slack `k` (deviations
    /// smaller than `k` are ignored) and alarm threshold `h`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidArgument`] when `target` is not finite, `k` is
    /// negative or not finite, or `h` is not strictly positive.
    pub fn new(target: f64, k: f64, h: f64) -> Result<Cusum> {
        if !target.is_finite() {
            return Err(Error::InvalidArgument("cusum target must be finite"));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(k >= 0.0) || !k.is_finite() {
            return Err(Error::InvalidArgument("cusum slack k must be >= 0"));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(h > 0.0) || !h.is_finite() {
            return Err(Error::InvalidArgument("cusum threshold h must be > 0"));
        }
        Ok(Cusum {
            target,
            k,
            h,
            pos: 0.0,
            neg: 0.0,
            alarms: 0,
        })
    }

    /// Feeds one sample; returns `true` when this sample triggers an
    /// alarm. The accumulated sums reset after an alarm so the next
    /// shift is detected independently.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidArgument`] on a non-finite sample; detector state
    /// is left untouched.
    pub fn update(&mut self, x: f64) -> Result<bool> {
        if !x.is_finite() {
            return Err(Error::InvalidArgument("cusum sample must be finite"));
        }
        let d = x - self.target;
        self.pos = (self.pos + d - self.k).max(0.0);
        self.neg = (self.neg - d - self.k).max(0.0);
        if self.pos > self.h || self.neg > self.h {
            self.alarms += 1;
            self.pos = 0.0;
            self.neg = 0.0;
            return Ok(true);
        }
        Ok(false)
    }

    /// Total alarms raised so far.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Current one-sided sums `(positive, negative)` — useful for
    /// exporting "how close to alarming" as a gauge.
    pub fn sums(&self) -> (f64, f64) {
        (self.pos, self.neg)
    }

    /// Clears the accumulated sums (alarm count is preserved).
    pub fn reset(&mut self) {
        self.pos = 0.0;
        self.neg = 0.0;
    }
}

/// Two-sided Page–Hinkley detector.
///
/// Maintains the cumulative deviation of samples from their running mean
/// (minus a tolerance `delta`) and alarms when it departs from its
/// historical extremum by more than `lambda`.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    delta: f64,
    lambda: f64,
    n: u64,
    mean: f64,
    up: f64,
    up_min: f64,
    down: f64,
    down_max: f64,
    alarms: u64,
}

impl PageHinkley {
    /// Builds a detector with tolerance `delta` (magnitude of mean drift
    /// to ignore) and alarm threshold `lambda`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidArgument`] when `delta` is negative or not finite,
    /// or `lambda` is not strictly positive.
    pub fn new(delta: f64, lambda: f64) -> Result<PageHinkley> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(delta >= 0.0) || !delta.is_finite() {
            return Err(Error::InvalidArgument("page-hinkley delta must be >= 0"));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(Error::InvalidArgument("page-hinkley lambda must be > 0"));
        }
        Ok(PageHinkley {
            delta,
            lambda,
            n: 0,
            mean: 0.0,
            up: 0.0,
            up_min: 0.0,
            down: 0.0,
            down_max: 0.0,
            alarms: 0,
        })
    }

    /// Feeds one sample; returns `true` when this sample triggers an
    /// alarm. All running state resets after an alarm.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidArgument`] on a non-finite sample; detector state
    /// is left untouched.
    pub fn update(&mut self, x: f64) -> Result<bool> {
        if !x.is_finite() {
            return Err(Error::InvalidArgument("page-hinkley sample must be finite"));
        }
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        let d = x - self.mean;
        self.up += d - self.delta;
        self.up_min = self.up_min.min(self.up);
        self.down += d + self.delta;
        self.down_max = self.down_max.max(self.down);
        if self.up - self.up_min > self.lambda || self.down_max - self.down > self.lambda {
            self.alarms += 1;
            self.reset();
            return Ok(true);
        }
        Ok(false)
    }

    /// Total alarms raised so far.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Clears all running state (alarm count is preserved).
    pub fn reset(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.up = 0.0;
        self.up_min = 0.0;
        self.down = 0.0;
        self.down_max = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cusum_rejects_bad_params() {
        assert!(Cusum::new(f64::NAN, 0.5, 4.0).is_err());
        assert!(Cusum::new(0.0, -0.1, 4.0).is_err());
        assert!(Cusum::new(0.0, f64::NAN, 4.0).is_err());
        assert!(Cusum::new(0.0, 0.5, 0.0).is_err());
        assert!(Cusum::new(0.0, 0.5, f64::INFINITY).is_err());
    }

    #[test]
    fn cusum_rejects_nan_sample_without_corrupting_state() {
        let mut d = Cusum::new(0.0, 0.5, 4.0).unwrap();
        d.update(1.0).unwrap();
        let before = d.sums();
        assert!(d.update(f64::NAN).is_err());
        assert!(d.update(f64::INFINITY).is_err());
        assert_eq!(d.sums(), before);
    }

    #[test]
    fn cusum_quiet_within_slack() {
        let mut d = Cusum::new(10.0, 0.5, 4.0).unwrap();
        for i in 0..10_000 {
            // Alternating ±0.4 around the target stays inside slack.
            let x = 10.0 + if i % 2 == 0 { 0.4 } else { -0.4 };
            assert!(!d.update(x).unwrap());
        }
        assert_eq!(d.alarms(), 0);
    }

    #[test]
    fn cusum_detects_both_directions() {
        let mut up = Cusum::new(0.0, 0.5, 4.0).unwrap();
        let mut ticks = 0;
        while !up.update(1.5).unwrap() {
            ticks += 1;
            assert!(ticks < 100, "upward step never detected");
        }
        let mut down = Cusum::new(0.0, 0.5, 4.0).unwrap();
        ticks = 0;
        while !down.update(-1.5).unwrap() {
            ticks += 1;
            assert!(ticks < 100, "downward step never detected");
        }
    }

    #[test]
    fn cusum_resets_after_alarm() {
        let mut d = Cusum::new(0.0, 0.5, 4.0).unwrap();
        while !d.update(2.0).unwrap() {}
        assert_eq!(d.sums(), (0.0, 0.0));
        assert_eq!(d.alarms(), 1);
        // Back on target: stays quiet.
        for _ in 0..100 {
            assert!(!d.update(0.0).unwrap());
        }
        assert_eq!(d.alarms(), 1);
    }

    #[test]
    fn page_hinkley_rejects_bad_params_and_nan() {
        assert!(PageHinkley::new(-0.1, 8.0).is_err());
        assert!(PageHinkley::new(f64::NAN, 8.0).is_err());
        assert!(PageHinkley::new(0.25, 0.0).is_err());
        assert!(PageHinkley::new(0.25, f64::NAN).is_err());
        let mut d = PageHinkley::new(0.25, 8.0).unwrap();
        d.update(1.0).unwrap();
        assert!(d.update(f64::NAN).is_err());
        assert_eq!(d.alarms(), 0);
    }

    #[test]
    fn page_hinkley_quiet_on_constant_stream() {
        let mut d = PageHinkley::new(0.25, 8.0).unwrap();
        for _ in 0..10_000 {
            assert!(!d.update(5.0).unwrap());
        }
        assert_eq!(d.alarms(), 0);
    }

    #[test]
    fn page_hinkley_detects_mean_step() {
        let mut d = PageHinkley::new(0.25, 8.0).unwrap();
        // Establish a baseline, then step the mean up by 2.
        for _ in 0..200 {
            assert!(!d.update(0.0).unwrap());
        }
        let mut fired = false;
        for _ in 0..100 {
            if d.update(2.0).unwrap() {
                fired = true;
                break;
            }
        }
        assert!(fired, "mean step of 2.0 never detected");
        assert_eq!(d.alarms(), 1);
    }

    #[test]
    fn page_hinkley_detects_downward_step() {
        let mut d = PageHinkley::new(0.25, 8.0).unwrap();
        for _ in 0..200 {
            d.update(10.0).unwrap();
        }
        let mut fired = false;
        for _ in 0..100 {
            if d.update(8.0).unwrap() {
                fired = true;
                break;
            }
        }
        assert!(fired, "downward mean step never detected");
    }
}
