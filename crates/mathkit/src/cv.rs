//! K-fold cross-validation over a design matrix, used by the greedy
//! forward feature-selection strategy to score candidate counter sets
//! without overfitting the training grid.

use crate::linreg::{FitOptions, LinearModel};
use crate::matrix::Matrix;
use crate::par;
use crate::{Error, Result};

/// Deterministic k-fold split: observation `i` goes to fold `i % k`.
/// The calibration grid interleaves workload intensities, so striding is a
/// reasonable shuffle-free stratification and keeps runs reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KFold {
    k: usize,
}

impl KFold {
    /// Creates a splitter with `k` folds.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidArgument`] when `k < 2`.
    pub fn new(k: usize) -> Result<KFold> {
        if k < 2 {
            return Err(Error::InvalidArgument("k-fold needs k >= 2"));
        }
        Ok(KFold { k })
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Returns `(train, test)` index sets for fold `fold`.
    ///
    /// # Panics
    ///
    /// Panics if `fold >= k`.
    pub fn split(&self, n: usize, fold: usize) -> (Vec<usize>, Vec<usize>) {
        assert!(fold < self.k, "fold {fold} out of range ({})", self.k);
        let mut train = Vec::with_capacity(n);
        let mut test = Vec::with_capacity(n / self.k + 1);
        for i in 0..n {
            if i % self.k == fold {
                test.push(i);
            } else {
                train.push(i);
            }
        }
        (train, test)
    }
}

fn subset(x: &Matrix, y: &[f64], idx: &[usize]) -> Result<(Matrix, Vec<f64>)> {
    // Assemble the training design flat: one allocation instead of one
    // Vec per selected row.
    let mut data = Vec::with_capacity(idx.len() * x.cols());
    for &i in idx {
        data.extend_from_slice(x.row(i));
    }
    let ys: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
    Ok((Matrix::from_flat(idx.len(), x.cols(), data)?, ys))
}

/// Out-of-fold squared error and count for one fold.
fn fold_error(
    x: &Matrix,
    y: &[f64],
    opts: &FitOptions,
    folds: KFold,
    fold: usize,
) -> Result<(f64, usize)> {
    let (train, test) = folds.split(x.rows(), fold);
    if test.is_empty() {
        return Ok((0.0, 0));
    }
    let (xt, yt) = subset(x, y, &train)?;
    let model = LinearModel::fit_with(&xt, &yt, opts)?;
    let mut sq = 0.0;
    for &i in &test {
        let e = y[i] - model.predict(x.row(i))?;
        sq += e * e;
    }
    Ok((sq, test.len()))
}

/// Mean out-of-fold RMSE of a linear model over `k` folds.
///
/// Folds are independent (each trains on its own row subset), so they are
/// evaluated concurrently when the design is big enough for the fits to
/// dominate thread fan-out cost; tiny problems stay on one thread. The
/// result is identical either way — per-fold errors are reduced in fold
/// order.
///
/// # Errors
///
/// Propagates fit errors; [`Error::Empty`]/[`Error::Underdetermined`] when
/// folds are too small to fit the model.
pub fn cross_val_rmse(x: &Matrix, y: &[f64], opts: &FitOptions, k: usize) -> Result<f64> {
    let folds = KFold::new(k)?;
    let n = x.rows();
    if y.len() != n {
        return Err(Error::DimensionMismatch {
            op: "cross_val",
            lhs: x.shape(),
            rhs: (y.len(), 1),
        });
    }
    // Below ~32k multiply-adds per fold a scoped-thread fan-out costs more
    // than the fits themselves.
    let work_per_fold = (n / k).max(1) * x.cols() * x.cols();
    let threads = if work_per_fold >= 32_768 {
        par::available_threads().min(k)
    } else {
        1
    };
    let fold_ids: Vec<usize> = (0..k).collect();
    let per_fold = par::par_map(&fold_ids, threads, |_, &fold| {
        fold_error(x, y, opts, folds, fold)
    });

    let mut total_sq = 0.0;
    let mut total_n = 0usize;
    for r in per_fold {
        let (sq, cnt) = r?;
        total_sq += sq;
        total_n += cnt;
    }
    if total_n == 0 {
        return Err(Error::Empty("no test observations in any fold"));
    }
    Ok((total_sq / total_n as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kfold_validates_k() {
        assert!(KFold::new(1).is_err());
        assert!(KFold::new(0).is_err());
        assert_eq!(KFold::new(5).unwrap().k(), 5);
    }

    #[test]
    fn split_partitions_everything_exactly_once() {
        let kf = KFold::new(4).unwrap();
        let n = 13;
        let mut seen = vec![0u32; n];
        for fold in 0..4 {
            let (train, test) = kf.split(n, fold);
            assert_eq!(train.len() + test.len(), n);
            for &i in &test {
                seen[i] += 1;
            }
            // Disjoint.
            for &i in &test {
                assert!(!train.contains(&i));
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each index tested once");
    }

    #[test]
    fn cv_rmse_near_zero_on_exact_data() {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 7) as f64, (i % 4) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 1.0 + 2.0 * r[0] - r[1]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let rmse = cross_val_rmse(&x, &y, &FitOptions::default(), 5).unwrap();
        assert!(rmse < 1e-9, "exact linear data should cross-validate to ~0");
    }

    #[test]
    fn cv_penalizes_irrelevant_noisy_feature_sets() {
        // y depends only on column 0; adding a pure-noise column should not
        // *improve* CV error (and usually worsens it slightly).
        let mut state = 7u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut rows_good = Vec::new();
        let mut rows_noisy = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let a = (i % 10) as f64;
            rows_good.push(vec![a]);
            rows_noisy.push(vec![a, next() * 100.0]);
            y.push(3.0 * a + 0.01 * next());
        }
        let good = cross_val_rmse(
            &Matrix::from_rows(&rows_good).unwrap(),
            &y,
            &FitOptions::default(),
            5,
        )
        .unwrap();
        let noisy = cross_val_rmse(
            &Matrix::from_rows(&rows_noisy).unwrap(),
            &y,
            &FitOptions::default(),
            5,
        )
        .unwrap();
        assert!(good <= noisy * 1.5, "good={good} noisy={noisy}");
    }

    #[test]
    fn cv_rejects_mismatched_target() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(cross_val_rmse(&x, &[1.0], &FitOptions::default(), 2).is_err());
    }
}
