//! A tiny deterministic fork-join helper over `std::thread::scope`.
//!
//! The calibration sweep, the per-frequency regressions and the
//! cross-validation folds are all embarrassingly parallel: independent
//! work items whose results must come back **in input order** so that
//! parallel runs are bit-identical to serial ones. [`par_map`] provides
//! exactly that — a work-stealing index queue fanned across scoped
//! threads, results reassembled by item index — with a serial fast path
//! when one thread (or one item) makes threading pointless.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Resolves a user-facing parallelism knob: `0` means "all available
/// cores", anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Maps `f` over `items`, using up to `threads` worker threads, returning
/// results in input order. `f` receives `(index, &item)`.
///
/// Guarantees:
/// * the output is `[f(0, &items[0]), f(1, &items[1]), …]` regardless of
///   thread count — parallel runs are indistinguishable from serial ones;
/// * a panic in any worker propagates to the caller;
/// * `threads <= 1` (or fewer than two items) runs inline with no thread
///   spawned at all.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            // join() only errs when the worker panicked; re-raise the
            // original payload so the caller sees the real message.
            match handle.join() {
                Ok(local) => {
                    for (i, value) in local {
                        slots[i] = Some(value);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_zero_to_available() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map(&items, 1, |i, &x| x * 3 + i as u64);
        for threads in [2, 3, 8, 64] {
            assert_eq!(par_map(&items, threads, |i, &x| x * 3 + i as u64), serial);
        }
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map(&[5u32], 8, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn workers_capped_by_item_count() {
        // 3 items, 100 threads requested: must still complete correctly.
        assert_eq!(par_map(&[1, 2, 3], 100, |_, &x| x * x), vec![1, 4, 9]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        par_map(&[1, 2, 3, 4], 2, |_, &x| {
            assert!(x < 3, "boom");
            x
        });
    }
}
