//! Feature (counter) selection strategies.
//!
//! The paper fixes the generic counters `instructions`, `cache-references`,
//! `cache-misses`, observes that fixed generic counters "is not necessarily
//! the most reliable solution", and announces Spearman-based automatic
//! selection as future work (§5). Both that strategy and a stronger
//! greedy-forward/cross-validated variant are implemented here; experiment
//! E5 compares them.

use crate::correlation::spearman;
use crate::cv::cross_val_rmse;
use crate::linreg::FitOptions;
use crate::matrix::Matrix;
use crate::{Error, Result};

/// Ranks features by `|Spearman(feature, target)|` and returns the indices
/// of the top `k`, most-correlated first.
///
/// # Errors
///
/// [`Error::InvalidArgument`] when `k` is zero or exceeds the feature
/// count; correlation errors propagate.
pub fn spearman_top_k(x: &Matrix, y: &[f64], k: usize) -> Result<Vec<usize>> {
    if k == 0 || k > x.cols() {
        return Err(Error::InvalidArgument("k must be in 1..=feature count"));
    }
    let mut scored: Vec<(usize, f64)> = (0..x.cols())
        .map(|c| Ok((c, spearman(&x.col(c), y)?.abs())))
        .collect::<Result<_>>()?;
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN correlation"));
    Ok(scored.into_iter().take(k).map(|(c, _)| c).collect())
}

/// Absolute Spearman correlation of every feature column against the
/// target, in column order. Useful for reporting the full ranking.
///
/// # Errors
///
/// Propagates correlation errors.
pub fn spearman_scores(x: &Matrix, y: &[f64]) -> Result<Vec<f64>> {
    (0..x.cols()).map(|c| spearman(&x.col(c), y)).collect()
}

/// Result of a greedy forward-selection run.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Chosen feature indices in the order they were added.
    pub features: Vec<usize>,
    /// Cross-validated RMSE of the final feature set.
    pub cv_rmse: f64,
}

/// Greedy forward selection: starting from the empty set, repeatedly adds
/// the feature that most reduces k-fold cross-validated RMSE, stopping when
/// no addition improves by more than `min_improvement` (relative) or when
/// `max_features` are selected.
///
/// # Errors
///
/// [`Error::InvalidArgument`] for a zero `max_features`; fit/CV errors
/// propagate.
pub fn greedy_forward(
    x: &Matrix,
    y: &[f64],
    max_features: usize,
    folds: usize,
    min_improvement: f64,
) -> Result<Selection> {
    if max_features == 0 {
        return Err(Error::InvalidArgument("max_features must be > 0"));
    }
    let max_features = max_features.min(x.cols());
    let opts = FitOptions::default();
    let mut chosen: Vec<usize> = Vec::new();
    let mut best_rmse = f64::INFINITY;

    loop {
        if chosen.len() >= max_features {
            break;
        }
        // Score the round's candidates concurrently — each candidate's CV
        // is independent — then reduce in ascending candidate order, so
        // ties break exactly as the serial scan did.
        let cands: Vec<usize> = (0..x.cols()).filter(|c| !chosen.contains(c)).collect();
        let scores = crate::par::par_map(
            &cands,
            crate::par::available_threads().min(cands.len()),
            |_, &cand| {
                let mut cols = chosen.clone();
                cols.push(cand);
                let sub = project(x, &cols)?;
                cross_val_rmse(&sub, y, &opts, folds)
            },
        );
        let mut round_best: Option<(usize, f64)> = None;
        for (&cand, score) in cands.iter().zip(scores) {
            let rmse = match score {
                Ok(v) => v,
                // A singular candidate set (collinear counters) is simply
                // not eligible this round.
                Err(Error::Singular) => continue,
                Err(e) => return Err(e),
            };
            if round_best.is_none_or(|(_, b)| rmse < b) {
                round_best = Some((cand, rmse));
            }
        }
        let Some((cand, rmse)) = round_best else {
            break;
        };
        let improved = best_rmse.is_infinite()
            || (best_rmse - rmse) > min_improvement * best_rmse.max(f64::MIN_POSITIVE);
        if !improved {
            break;
        }
        chosen.push(cand);
        best_rmse = rmse;
    }

    if chosen.is_empty() {
        return Err(Error::Empty("greedy selection found no usable feature"));
    }
    Ok(Selection {
        features: chosen,
        cv_rmse: best_rmse,
    })
}

/// Copies the named columns of `x` into a new matrix (column order given by
/// `cols`).
///
/// # Errors
///
/// [`Error::InvalidArgument`] when a column index is out of range.
pub fn project(x: &Matrix, cols: &[usize]) -> Result<Matrix> {
    if cols.is_empty() {
        return Err(Error::Empty("projection columns"));
    }
    if cols.iter().any(|&c| c >= x.cols()) {
        return Err(Error::InvalidArgument("projection column out of range"));
    }
    let rows: Vec<Vec<f64>> = (0..x.rows())
        .map(|r| cols.iter().map(|&c| x[(r, c)]).collect())
        .collect();
    Matrix::from_rows(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 informative columns + 2 noise columns; y = 2*c0 + c1 + 0.5*c2.
    fn dataset() -> (Matrix, Vec<f64>) {
        let mut state = 99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..120 {
            let c0 = (i % 11) as f64;
            let c1 = ((i * 3) % 7) as f64;
            let c2 = ((i * 5) % 13) as f64;
            let n0 = next() * 10.0;
            let n1 = next() * 10.0;
            rows.push(vec![c0, c1, c2, n0, n1]);
            y.push(2.0 * c0 + c1 + 0.5 * c2 + 0.01 * next());
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn spearman_top_k_finds_informative_columns() {
        let (x, y) = dataset();
        let top = spearman_top_k(&x, &y, 3).unwrap();
        // The strongest single predictor (c0) must rank first.
        assert_eq!(top[0], 0);
        // Noise columns must not dominate the top-3.
        let noise_in_top = top.iter().filter(|&&c| c >= 3).count();
        assert!(noise_in_top <= 1, "top-3 = {top:?}");
    }

    #[test]
    fn spearman_top_k_validates_k() {
        let (x, y) = dataset();
        assert!(spearman_top_k(&x, &y, 0).is_err());
        assert!(spearman_top_k(&x, &y, 6).is_err());
    }

    #[test]
    fn spearman_scores_shape() {
        let (x, y) = dataset();
        let scores = spearman_scores(&x, &y).unwrap();
        assert_eq!(scores.len(), 5);
        assert!(scores[0] > scores[3].abs(), "informative beats noise");
    }

    #[test]
    fn greedy_forward_selects_informative_set() {
        let (x, y) = dataset();
        let sel = greedy_forward(&x, &y, 5, 4, 0.01).unwrap();
        assert!(sel.features.contains(&0), "{:?}", sel.features);
        assert!(sel.features.contains(&1), "{:?}", sel.features);
        assert!(sel.features.contains(&2), "{:?}", sel.features);
        assert!(!sel.features.contains(&3) && !sel.features.contains(&4));
        assert!(sel.cv_rmse < 0.1, "cv_rmse = {}", sel.cv_rmse);
    }

    #[test]
    fn greedy_forward_respects_max_features() {
        let (x, y) = dataset();
        let sel = greedy_forward(&x, &y, 1, 4, 0.0).unwrap();
        assert_eq!(sel.features.len(), 1);
        assert_eq!(sel.features[0], 0);
    }

    #[test]
    fn greedy_forward_skips_collinear_duplicates() {
        // Column 1 duplicates column 0: adding both is singular and must be
        // skipped, not fatal.
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let a = (i % 6) as f64;
                vec![a, a]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 1.0).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let sel = greedy_forward(&x, &y, 2, 3, 0.0).unwrap();
        assert_eq!(sel.features.len(), 1, "only one of two twins selected");
    }

    #[test]
    fn project_validates_columns() {
        let (x, _) = dataset();
        assert!(project(&x, &[]).is_err());
        assert!(project(&x, &[9]).is_err());
        let p = project(&x, &[2, 0]).unwrap();
        assert_eq!(p.cols(), 2);
        assert_eq!(p[(0, 1)], x[(0, 0)]);
    }
}
