//! Multivariate linear regression: ordinary least squares (via QR, falling
//! back to normal equations), ridge regression, and weighted least squares.
//!
//! This is the "Multivariate Regression" box of the paper's Figure 1: HPC
//! rates go in, per-frequency power-model coefficients come out.

use crate::matrix::Matrix;
use crate::{Error, Result};

/// A fitted linear model `y ≈ intercept + Σ coefficients[i] · x[i]`.
///
/// ```
/// use mathkit::linreg::LinearModel;
/// use mathkit::matrix::Matrix;
///
/// # fn main() -> Result<(), mathkit::Error> {
/// let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]])?;
/// let model = LinearModel::fit(&x, &[2.0, 4.0, 6.0])?;
/// assert!((model.predict(&[10.0])? - 20.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    intercept: f64,
    coefficients: Vec<f64>,
    r_squared: f64,
    residuals: Vec<f64>,
}

/// How the design matrix should be solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Solver {
    /// Householder QR on the design matrix — numerically robust default.
    #[default]
    Qr,
    /// Normal equations `XᵀX β = Xᵀy` via LU — faster, less stable.
    NormalEquations,
}

/// Options controlling a fit; construct with [`FitOptions::default`] and
/// override fields with the builder-style setters.
#[derive(Debug, Clone, PartialEq)]
pub struct FitOptions {
    intercept: bool,
    ridge_lambda: f64,
    solver: Solver,
    weights: Option<Vec<f64>>,
}

impl Default for FitOptions {
    fn default() -> FitOptions {
        FitOptions {
            intercept: true,
            ridge_lambda: 0.0,
            solver: Solver::default(),
            weights: None,
        }
    }
}

impl FitOptions {
    /// Creates default options (intercept on, no ridge, QR solver).
    pub fn new() -> FitOptions {
        FitOptions::default()
    }

    /// Enables/disables the intercept term. Disabling it pins the model
    /// through the origin — used when the idle power is isolated separately,
    /// as the paper does with its constant 31.48 W term.
    pub fn intercept(mut self, yes: bool) -> FitOptions {
        self.intercept = yes;
        self
    }

    /// Sets the L2 (ridge) penalty λ ≥ 0. The intercept is never penalized.
    pub fn ridge(mut self, lambda: f64) -> FitOptions {
        self.ridge_lambda = lambda.max(0.0);
        self
    }

    /// Selects the solver.
    pub fn solver(mut self, solver: Solver) -> FitOptions {
        self.solver = solver;
        self
    }

    /// Per-observation weights for weighted least squares.
    pub fn weights(mut self, w: Vec<f64>) -> FitOptions {
        self.weights = Some(w);
        self
    }
}

/// Solves a normal-equations system: Cholesky on the (symmetric
/// positive-definite, for full-rank designs) Gram matrix — half the work
/// of pivoted LU on the regression hot path — falling back to LU when the
/// matrix is only semidefinite so exact collinearity still surfaces as
/// [`Error::Singular`] exactly as before.
fn solve_spd(gram: &Matrix, rhs: &[f64]) -> Result<Vec<f64>> {
    match gram.cholesky_solve(rhs) {
        Ok(beta) => Ok(beta),
        Err(Error::NotPositiveDefinite) => gram.solve(rhs),
        Err(e) => Err(e),
    }
}

impl LinearModel {
    /// Fits OLS with an intercept using the default options.
    ///
    /// # Errors
    ///
    /// See [`LinearModel::fit_with`].
    pub fn fit(x: &Matrix, y: &[f64]) -> Result<LinearModel> {
        LinearModel::fit_with(x, y, &FitOptions::default())
    }

    /// Fits a linear model with explicit [`FitOptions`].
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] when `y` (or the weight vector) does
    ///   not match the number of rows of `x`;
    /// * [`Error::Underdetermined`] when there are fewer observations than
    ///   parameters;
    /// * [`Error::Singular`] when features are exactly collinear and no
    ///   ridge penalty is applied;
    /// * [`Error::InvalidArgument`] for non-positive weights.
    pub fn fit_with(x: &Matrix, y: &[f64], opts: &FitOptions) -> Result<LinearModel> {
        let n = x.rows();
        if y.len() != n {
            return Err(Error::DimensionMismatch {
                op: "fit target",
                lhs: x.shape(),
                rhs: (y.len(), 1),
            });
        }
        let p = x.cols() + usize::from(opts.intercept);
        if n < p {
            return Err(Error::Underdetermined {
                observations: n,
                parameters: p,
            });
        }
        if let Some(w) = &opts.weights {
            if w.len() != n {
                return Err(Error::DimensionMismatch {
                    op: "fit weights",
                    lhs: x.shape(),
                    rhs: (w.len(), 1),
                });
            }
            #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
            if w.iter().any(|&wi| !(wi > 0.0) || !wi.is_finite()) {
                return Err(Error::InvalidArgument("weights must be finite and > 0"));
            }
        }

        // Build (optionally weighted) design matrix with intercept column.
        let mut design = Matrix::zeros(n, p)?;
        let mut target = vec![0.0; n];
        for r in 0..n {
            let sw = opts.weights.as_ref().map_or(1.0, |w| w[r].sqrt());
            let mut c0 = 0;
            if opts.intercept {
                design[(r, 0)] = sw;
                c0 = 1;
            }
            for c in 0..x.cols() {
                design[(r, c0 + c)] = sw * x[(r, c)];
            }
            target[r] = sw * y[r];
        }

        let beta = if opts.ridge_lambda > 0.0 {
            // Ridge always goes through the normal equations; λ keeps them
            // well-conditioned. The intercept column is not penalized.
            let mut gram = design.gram();
            let start = usize::from(opts.intercept);
            for i in start..p {
                gram[(i, i)] += opts.ridge_lambda;
            }
            solve_spd(&gram, &design.tr_matvec(&target)?)?
        } else {
            match opts.solver {
                Solver::NormalEquations => solve_spd(&design.gram(), &design.tr_matvec(&target)?)?,
                Solver::Qr => {
                    let (q, r) = design.qr()?;
                    let qty = q.transpose().matvec(&target)?;
                    r.solve(&qty)?
                }
            }
        };

        let (intercept, coefficients) = if opts.intercept {
            (beta[0], beta[1..].to_vec())
        } else {
            (0.0, beta)
        };

        // Residuals / R² on the unweighted data.
        let mut residuals = Vec::with_capacity(n);
        let mut ss_res = 0.0;
        for r in 0..n {
            let mut pred = intercept;
            for c in 0..x.cols() {
                pred += coefficients[c] * x[(r, c)];
            }
            let e = y[r] - pred;
            residuals.push(e);
            ss_res += e * e;
        }
        let my = y.iter().sum::<f64>() / n as f64;
        let ss_tot: f64 = y.iter().map(|v| (v - my) * (v - my)).sum();
        let r_squared = if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };

        Ok(LinearModel {
            intercept,
            coefficients,
            r_squared,
            residuals,
        })
    }

    /// Constructs a model from known parameters (e.g. the coefficients the
    /// paper publishes for the i3-2120 at 3.30 GHz).
    pub fn from_parameters(intercept: f64, coefficients: Vec<f64>) -> LinearModel {
        LinearModel {
            intercept,
            coefficients,
            r_squared: f64::NAN,
            residuals: Vec::new(),
        }
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The fitted slope coefficients, one per feature column.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Coefficient of determination on the training data (`NaN` for models
    /// built via [`LinearModel::from_parameters`]).
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Training residuals `y − ŷ` (empty for parameter-built models).
    pub fn residuals(&self) -> &[f64] {
        &self.residuals
    }

    /// Predicts a single observation.
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] when the feature count is wrong.
    pub fn predict(&self, features: &[f64]) -> Result<f64> {
        if features.len() != self.coefficients.len() {
            return Err(Error::DimensionMismatch {
                op: "predict",
                lhs: (self.coefficients.len(), 1),
                rhs: (features.len(), 1),
            });
        }
        Ok(self.intercept
            + self
                .coefficients
                .iter()
                .zip(features)
                .map(|(c, f)| c * f)
                .sum::<f64>())
    }

    /// Predicts every row of a feature matrix.
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] when the column count is wrong.
    pub fn predict_all(&self, x: &Matrix) -> Result<Vec<f64>> {
        (0..x.rows()).map(|r| self.predict(x.row(r))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_xy() -> (Matrix, Vec<f64>) {
        // y = 5 + 2a - 3b, exact.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64, (i % 3) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 5.0 + 2.0 * r[0] - 3.0 * r[1]).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn ols_recovers_exact_coefficients() {
        let (x, y) = toy_xy();
        let m = LinearModel::fit(&x, &y).unwrap();
        assert!((m.intercept() - 5.0).abs() < 1e-9);
        assert!((m.coefficients()[0] - 2.0).abs() < 1e-9);
        assert!((m.coefficients()[1] + 3.0).abs() < 1e-9);
        assert!((m.r_squared() - 1.0).abs() < 1e-9);
        assert!(m.residuals().iter().all(|r| r.abs() < 1e-9));
    }

    #[test]
    fn normal_equations_match_qr() {
        let (x, y) = toy_xy();
        let q = LinearModel::fit_with(&x, &y, &FitOptions::new().solver(Solver::Qr)).unwrap();
        let ne = LinearModel::fit_with(&x, &y, &FitOptions::new().solver(Solver::NormalEquations))
            .unwrap();
        assert!((q.intercept() - ne.intercept()).abs() < 1e-8);
        for (a, b) in q.coefficients().iter().zip(ne.coefficients()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn no_intercept_goes_through_origin() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = vec![3.0, 6.0, 9.0];
        let m = LinearModel::fit_with(&x, &y, &FitOptions::new().intercept(false)).unwrap();
        assert_eq!(m.intercept(), 0.0);
        assert!((m.coefficients()[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ridge_shrinks_collinear() {
        // Two identical columns: OLS is singular, ridge resolves it and
        // splits the weight.
        let rows: Vec<Vec<f64>> = (1..=10).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (1..=10).map(|i| 4.0 * i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        assert!(matches!(
            LinearModel::fit_with(&x, &y, &FitOptions::new().solver(Solver::NormalEquations)),
            Err(Error::Singular)
        ));
        let m = LinearModel::fit_with(&x, &y, &FitOptions::new().ridge(1e-6)).unwrap();
        let c = m.coefficients();
        assert!((c[0] - c[1]).abs() < 1e-3, "ridge splits weight evenly");
        assert!((c[0] + c[1] - 4.0).abs() < 1e-3);
    }

    #[test]
    fn weighted_fit_prefers_heavy_points() {
        // Two clusters disagreeing on slope; weights decide the winner.
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![1.0], vec![2.0]]).unwrap();
        let y = vec![1.0, 2.0, 10.0, 20.0]; // slopes 1 and 10
        let heavy_first =
            LinearModel::fit_with(&x, &y, &FitOptions::new().weights(vec![1e6, 1e6, 1.0, 1.0]))
                .unwrap();
        assert!((heavy_first.coefficients()[0] - 1.0).abs() < 0.1);
        let heavy_second =
            LinearModel::fit_with(&x, &y, &FitOptions::new().weights(vec![1.0, 1.0, 1e6, 1e6]))
                .unwrap();
        assert!((heavy_second.coefficients()[0] - 10.0).abs() < 0.1);
    }

    #[test]
    fn invalid_weights_rejected() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = vec![1.0, 2.0, 3.0];
        for bad in [vec![0.0, 1.0, 1.0], vec![-1.0, 1.0, 1.0], vec![1.0, 1.0]] {
            assert!(LinearModel::fit_with(&x, &y, &FitOptions::new().weights(bad)).is_err());
        }
    }

    #[test]
    fn underdetermined_rejected() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        assert!(matches!(
            LinearModel::fit(&x, &[1.0]),
            Err(Error::Underdetermined { .. })
        ));
    }

    #[test]
    fn predict_validates_arity() {
        let m = LinearModel::from_parameters(1.0, vec![2.0, 3.0]);
        assert!((m.predict(&[1.0, 1.0]).unwrap() - 6.0).abs() < 1e-12);
        assert!(m.predict(&[1.0]).is_err());
    }

    #[test]
    fn predict_all_matches_predict() {
        let (x, y) = toy_xy();
        let m = LinearModel::fit(&x, &y).unwrap();
        let all = m.predict_all(&x).unwrap();
        for (r, p) in all.iter().enumerate() {
            assert!((p - m.predict(x.row(r)).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn noisy_fit_recovers_approximately() {
        // Deterministic pseudo-noise; coefficients recovered within tolerance.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0 // ~U(-1,1)
        };
        for i in 0..200 {
            let a = (i % 17) as f64;
            let b = (i % 7) as f64;
            rows.push(vec![a, b]);
            y.push(10.0 + 0.5 * a + 2.0 * b + 0.05 * next());
        }
        let m = LinearModel::fit(&Matrix::from_rows(&rows).unwrap(), &y).unwrap();
        assert!((m.intercept() - 10.0).abs() < 0.05);
        assert!((m.coefficients()[0] - 0.5).abs() < 0.01);
        assert!((m.coefficients()[1] - 2.0).abs() < 0.02);
        assert!(m.r_squared() > 0.999);
    }
}
