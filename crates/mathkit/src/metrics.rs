//! Model-quality metrics. The paper reports *median error* (15 % on
//! SPECjbb2013) and cites competitors by *average error* (Bertran 4.63 %,
//! HaPPy 7.5 %); both are absolute-percentage-error statistics, implemented
//! here alongside the usual MAE/RMSE/R².

use crate::stats::{mean, median};
use crate::{Error, Result};

fn check(actual: &[f64], predicted: &[f64]) -> Result<()> {
    if actual.is_empty() {
        return Err(Error::Empty("metric input"));
    }
    if actual.len() != predicted.len() {
        return Err(Error::DimensionMismatch {
            op: "metric",
            lhs: (actual.len(), 1),
            rhs: (predicted.len(), 1),
        });
    }
    Ok(())
}

/// Mean absolute error.
///
/// # Errors
///
/// [`Error::Empty`] / [`Error::DimensionMismatch`] on degenerate input.
pub fn mae(actual: &[f64], predicted: &[f64]) -> Result<f64> {
    check(actual, predicted)?;
    mean(
        &actual
            .iter()
            .zip(predicted)
            .map(|(a, p)| (a - p).abs())
            .collect::<Vec<_>>(),
    )
}

/// Root mean squared error.
///
/// # Errors
///
/// Same as [`mae`].
pub fn rmse(actual: &[f64], predicted: &[f64]) -> Result<f64> {
    check(actual, predicted)?;
    Ok(mean(
        &actual
            .iter()
            .zip(predicted)
            .map(|(a, p)| (a - p) * (a - p))
            .collect::<Vec<_>>(),
    )?
    .sqrt())
}

/// Absolute percentage errors `|a − p| / |a| · 100`, skipping zero actuals.
///
/// # Errors
///
/// [`Error::Empty`] when input is empty or every actual is zero.
pub fn absolute_percentage_errors(actual: &[f64], predicted: &[f64]) -> Result<Vec<f64>> {
    check(actual, predicted)?;
    let ape: Vec<f64> = actual
        .iter()
        .zip(predicted)
        .filter(|(a, _)| **a != 0.0)
        .map(|(a, p)| (a - p).abs() / a.abs() * 100.0)
        .collect();
    if ape.is_empty() {
        return Err(Error::Empty("all actual values are zero"));
    }
    Ok(ape)
}

/// Mean absolute percentage error (percent). The statistic behind the
/// “average error of 4.63 %” comparisons in §4.
///
/// # Errors
///
/// Same as [`absolute_percentage_errors`].
pub fn mape(actual: &[f64], predicted: &[f64]) -> Result<f64> {
    mean(&absolute_percentage_errors(actual, predicted)?)
}

/// Median absolute percentage error (percent) — the paper's Figure 3
/// headline statistic ("median error of 15 %").
///
/// # Errors
///
/// Same as [`absolute_percentage_errors`].
pub fn median_ape(actual: &[f64], predicted: &[f64]) -> Result<f64> {
    median(&absolute_percentage_errors(actual, predicted)?)
}

/// Coefficient of determination R² (1 when `actual` is constant and exactly
/// predicted; can be negative for models worse than the mean).
///
/// # Errors
///
/// Same as [`mae`].
pub fn r_squared(actual: &[f64], predicted: &[f64]) -> Result<f64> {
    check(actual, predicted)?;
    let m = mean(actual)?;
    let ss_res: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p) * (a - p))
        .sum();
    let ss_tot: f64 = actual.iter().map(|a| (a - m) * (a - m)).sum();
    if ss_tot == 0.0 {
        return Ok(if ss_res == 0.0 { 1.0 } else { 0.0 });
    }
    Ok(1.0 - ss_res / ss_tot)
}

/// Bundle of every metric for one (actual, predicted) pair — the row format
/// the experiment harness prints.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorReport {
    /// Mean absolute error in the target's unit (watts, here).
    pub mae: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Mean absolute percentage error, percent.
    pub mape: f64,
    /// Median absolute percentage error, percent.
    pub median_ape: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

impl ErrorReport {
    /// Computes all metrics at once.
    ///
    /// # Errors
    ///
    /// Same as the individual metric functions.
    pub fn compute(actual: &[f64], predicted: &[f64]) -> Result<ErrorReport> {
        Ok(ErrorReport {
            mae: mae(actual, predicted)?,
            rmse: rmse(actual, predicted)?,
            mape: mape(actual, predicted)?,
            median_ape: median_ape(actual, predicted)?,
            r_squared: r_squared(actual, predicted)?,
        })
    }
}

impl std::fmt::Display for ErrorReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MAE={:.3} RMSE={:.3} MAPE={:.2}% medAPE={:.2}% R2={:.4}",
            self.mae, self.rmse, self.mape, self.median_ape, self.r_squared
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_zero_error() {
        let a = [1.0, 2.0, 3.0];
        let r = ErrorReport::compute(&a, &a).unwrap();
        assert_eq!(r.mae, 0.0);
        assert_eq!(r.rmse, 0.0);
        assert_eq!(r.mape, 0.0);
        assert_eq!(r.median_ape, 0.0);
        assert_eq!(r.r_squared, 1.0);
    }

    #[test]
    fn mae_rmse_known() {
        let a = [0.0, 0.0, 0.0, 0.0];
        let p = [1.0, -1.0, 1.0, -1.0];
        assert_eq!(mae(&a, &p).unwrap(), 1.0);
        assert_eq!(rmse(&a, &p).unwrap(), 1.0);
        let p2 = [2.0, 0.0, 0.0, 0.0];
        assert_eq!(mae(&a, &p2).unwrap(), 0.5);
        assert_eq!(rmse(&a, &p2).unwrap(), 1.0);
    }

    #[test]
    fn mape_and_median_ape_known() {
        let a = [100.0, 100.0, 100.0];
        let p = [110.0, 90.0, 100.0];
        assert!((mape(&a, &p).unwrap() - 20.0 / 3.0).abs() < 1e-12);
        assert!((median_ape(&a, &p).unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn ape_skips_zero_actuals() {
        let a = [0.0, 100.0];
        let p = [5.0, 120.0];
        assert!((mape(&a, &p).unwrap() - 20.0).abs() < 1e-12);
        assert!(mape(&[0.0, 0.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn median_ape_robust_to_outlier() {
        // One wild sample barely moves the median while it wrecks the mean —
        // the reason the paper quotes a median.
        let a = vec![100.0; 9];
        let mut p = vec![101.0; 9];
        p[0] = 500.0;
        let med = median_ape(&a, &p).unwrap();
        let avg = mape(&a, &p).unwrap();
        assert!((med - 1.0).abs() < 1e-12);
        assert!(avg > 40.0);
    }

    #[test]
    fn r_squared_behaviour() {
        let a = [1.0, 2.0, 3.0, 4.0];
        // Predicting the mean gives R² = 0.
        let m = [2.5, 2.5, 2.5, 2.5];
        assert!((r_squared(&a, &m).unwrap()).abs() < 1e-12);
        // Anti-correlated predictions go negative.
        let bad = [4.0, 3.0, 2.0, 1.0];
        assert!(r_squared(&a, &bad).unwrap() < 0.0);
    }

    #[test]
    fn mismatch_rejected() {
        assert!(mae(&[1.0], &[1.0, 2.0]).is_err());
        assert!(ErrorReport::compute(&[], &[]).is_err());
    }

    #[test]
    fn display_contains_all_fields() {
        let r = ErrorReport::compute(&[1.0, 2.0], &[1.1, 1.9]).unwrap();
        let s = r.to_string();
        for key in ["MAE", "RMSE", "MAPE", "medAPE", "R2"] {
            assert!(s.contains(key), "{s} missing {key}");
        }
    }
}
