//! Descriptive statistics used throughout the learning pipeline and the
//! experiment harness: means, variance, quantiles, ranking with ties.

use crate::{Error, Result};

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`Error::Empty`] on an empty slice.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(Error::Empty("mean input"));
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance (n − 1 denominator).
///
/// # Errors
///
/// Returns [`Error::Empty`] when fewer than two samples are given.
pub fn variance(xs: &[f64]) -> Result<f64> {
    if xs.len() < 2 {
        return Err(Error::Empty("variance needs >= 2 samples"));
    }
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Sample standard deviation.
///
/// # Errors
///
/// Same as [`variance`].
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    Ok(variance(xs)?.sqrt())
}

/// Median (average of the two central elements for even lengths).
///
/// # Errors
///
/// Returns [`Error::Empty`] on an empty slice.
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Linear-interpolated quantile, `q` in `[0, 1]`.
///
/// # Errors
///
/// [`Error::Empty`] on empty input, [`Error::InvalidArgument`] when `q` is
/// outside `[0, 1]` or not finite.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(Error::Empty("quantile input"));
    }
    if !(0.0..=1.0).contains(&q) || !q.is_finite() {
        return Err(Error::InvalidArgument("quantile q must be in [0, 1]"));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Minimum and maximum of a slice.
///
/// # Errors
///
/// Returns [`Error::Empty`] on an empty slice.
pub fn min_max(xs: &[f64]) -> Result<(f64, f64)> {
    if xs.is_empty() {
        return Err(Error::Empty("min_max input"));
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Ok((lo, hi))
}

/// Fractional ranks with ties assigned the average rank (1-based), the
/// convention Spearman correlation requires.
///
/// ```
/// let r = mathkit::stats::ranks(&[10.0, 20.0, 20.0, 30.0]);
/// assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
/// ```
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in ranks input"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average of 1-based ranks i+1 ..= j+1.
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for k in i..=j {
            out[idx[k]] = avg;
        }
        i = j + 1;
    }
    out
}

/// Online mean/variance accumulator (Welford's algorithm), handy for
/// streaming sensors that cannot buffer every sample.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Running {
        Running::default()
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current unbiased sample variance (0.0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Current sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

impl Extend<f64> for Running {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
        assert_eq!(median(&[1.0, 3.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn variance_known_value() {
        // Var of [2,4,4,4,5,5,7,9] = 32/7 (sample).
        let v = variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((v - 32.0 / 7.0).abs() < 1e-12);
        assert!(variance(&[1.0]).is_err());
    }

    #[test]
    fn quantile_bounds_and_interpolation() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 10.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 40.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 25.0);
        assert!(quantile(&xs, 1.5).is_err());
        assert!(quantile(&xs, -0.1).is_err());
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [40.0, 10.0, 30.0, 20.0];
        assert_eq!(quantile(&xs, 0.5).unwrap(), 25.0);
    }

    #[test]
    fn min_max_basic() {
        assert_eq!(min_max(&[3.0, -1.0, 7.0]).unwrap(), (-1.0, 7.0));
        assert!(min_max(&[]).is_err());
    }

    #[test]
    fn ranks_without_ties() {
        assert_eq!(ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ranks_with_ties_average() {
        assert_eq!(ranks(&[1.0, 1.0, 1.0]), vec![2.0, 2.0, 2.0]);
        assert_eq!(ranks(&[5.0, 5.0, 1.0, 9.0]), vec![2.5, 2.5, 1.0, 4.0]);
    }

    #[test]
    fn running_matches_batch() {
        let xs = [1.5, 2.5, 3.5, 10.0, -4.0];
        let mut r = Running::new();
        r.extend(xs.iter().copied());
        assert_eq!(r.count(), 5);
        assert!((r.mean() - mean(&xs).unwrap()).abs() < 1e-12);
        assert!((r.variance() - variance(&xs).unwrap()).abs() < 1e-9);
        assert!((r.std_dev() - std_dev(&xs).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn running_empty_and_single() {
        let mut r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        r.push(42.0);
        assert_eq!(r.mean(), 42.0);
        assert_eq!(r.variance(), 0.0);
    }
}
