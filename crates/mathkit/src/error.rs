use std::fmt;

/// Error type for all fallible `mathkit` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Matrix dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left/first operand, `(rows, cols)`.
        lhs: (usize, usize),
        /// Dimensions of the right/second operand, `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The input collection was empty where at least one element is needed.
    Empty(&'static str),
    /// A linear system was singular (or numerically so) and cannot be solved.
    Singular,
    /// A matrix expected to be positive-definite was not.
    NotPositiveDefinite,
    /// Ragged input: rows of differing lengths where a rectangle is needed.
    Ragged {
        /// Index of the first offending row.
        row: usize,
        /// Expected row length.
        expected: usize,
        /// Observed row length.
        found: usize,
    },
    /// Not enough observations to fit the requested model.
    Underdetermined {
        /// Number of observations provided.
        observations: usize,
        /// Number of parameters the model needs.
        parameters: usize,
    },
    /// An argument was out of its valid range.
    InvalidArgument(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            Error::Empty(what) => write!(f, "empty input: {what}"),
            Error::Singular => write!(f, "matrix is singular to working precision"),
            Error::NotPositiveDefinite => write!(f, "matrix is not positive-definite"),
            Error::Ragged {
                row,
                expected,
                found,
            } => write!(
                f,
                "ragged input: row {row} has length {found}, expected {expected}"
            ),
            Error::Underdetermined {
                observations,
                parameters,
            } => write!(
                f,
                "underdetermined system: {observations} observations for {parameters} parameters"
            ),
            Error::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            Error::DimensionMismatch {
                op: "matmul",
                lhs: (2, 3),
                rhs: (4, 5),
            },
            Error::Empty("samples"),
            Error::Singular,
            Error::NotPositiveDefinite,
            Error::Ragged {
                row: 1,
                expected: 3,
                found: 2,
            },
            Error::Underdetermined {
                observations: 2,
                parameters: 5,
            },
            Error::InvalidArgument("k must be > 0"),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Error>();
    }
}
