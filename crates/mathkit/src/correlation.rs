//! Correlation coefficients: Pearson (linear), Spearman (rank, the paper's
//! proposed counter-selection criterion), and Kendall's tau-b.

use crate::stats::{mean, ranks};
use crate::{Error, Result};

fn check_pair(x: &[f64], y: &[f64]) -> Result<()> {
    if x.is_empty() || y.is_empty() {
        return Err(Error::Empty("correlation input"));
    }
    if x.len() != y.len() {
        return Err(Error::DimensionMismatch {
            op: "correlation",
            lhs: (x.len(), 1),
            rhs: (y.len(), 1),
        });
    }
    if x.len() < 2 {
        return Err(Error::Empty("correlation needs >= 2 samples"));
    }
    Ok(())
}

/// Pearson product-moment correlation in `[-1, 1]`.
///
/// Returns `0.0` when either variable is constant (zero variance), which is
/// the pragmatic convention for feature screening: a constant counter
/// carries no information about power.
///
/// # Errors
///
/// [`Error::Empty`] / [`Error::DimensionMismatch`] for degenerate input.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    check_pair(x, y)?;
    let mx = mean(x)?;
    let my = mean(y)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Ok(0.0);
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation: Pearson correlation of the rank variables,
/// with average ranks for ties.
///
/// This is the statistic the paper proposes (§5) for automatically finding
/// the hardware counters most correlated with power, because it is robust
/// to the nonlinear (but monotonic) counter→power relationships that
/// voltage/frequency scaling introduces.
///
/// # Errors
///
/// Same as [`pearson`].
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64> {
    check_pair(x, y)?;
    pearson(&ranks(x), &ranks(y))
}

/// Kendall's tau-b (handles ties in both variables). O(n²) — fine for the
/// sample counts used in model learning.
///
/// # Errors
///
/// Same as [`pearson`].
pub fn kendall(x: &[f64], y: &[f64]) -> Result<f64> {
    check_pair(x, y)?;
    let n = x.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64;
    let mut ties_y = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if dx == 0.0 && dy == 0.0 {
                // Tied in both; contributes to neither.
            } else if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if dx * dy > 0.0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = (((n0 - ties_x) as f64) * ((n0 - ties_y) as f64)).sqrt();
    if denom == 0.0 {
        return Ok(0.0);
    }
    Ok((concordant - discordant) as f64 / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let yn: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &yn).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn pearson_mismatch_rejected() {
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(pearson(&[], &[]).is_err());
        assert!(pearson(&[1.0], &[1.0]).is_err());
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        // y = x³ is nonlinear but perfectly monotone: Spearman = 1,
        // Pearson < 1. This is exactly why the paper picks Spearman.
        let x: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.powi(3)).collect();
        let s = spearman(&x, &y).unwrap();
        let p = pearson(&x, &y).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(p < 1.0 - 1e-6);
    }

    #[test]
    fn spearman_known_value_with_ties() {
        // Hand-computed: x ranks [1, 2.5, 2.5, 4], y ranks [1,2,3,4].
        let x = [10.0, 20.0, 20.0, 30.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        let s = spearman(&x, &y).unwrap();
        // Pearson of [1,2.5,2.5,4] vs [1,2,3,4] = (cov)/(sd*sd).
        assert!((s - 0.9486832980505138).abs() < 1e-9);
    }

    #[test]
    fn kendall_perfect_orders() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        assert!((kendall(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let yr = [40.0, 30.0, 20.0, 10.0];
        assert!((kendall(&x, &yr).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_with_ties_stays_bounded() {
        let x = [1.0, 1.0, 2.0, 3.0];
        let y = [5.0, 6.0, 6.0, 7.0];
        let t = kendall(&x, &y).unwrap();
        assert!((-1.0..=1.0).contains(&t));
        assert!(t > 0.0);
    }

    #[test]
    fn all_correlations_symmetric() {
        let x = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6];
        let y = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - pearson(&y, &x).unwrap()).abs() < 1e-12);
        assert!((spearman(&x, &y).unwrap() - spearman(&y, &x).unwrap()).abs() < 1e-12);
        assert!((kendall(&x, &y).unwrap() - kendall(&y, &x).unwrap()).abs() < 1e-12);
    }
}
