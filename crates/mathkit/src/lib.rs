//! # mathkit
//!
//! Numerical substrate for the PowerAPI reproduction: dense linear algebra,
//! linear regression (ordinary, ridge, weighted), rank/linear correlation,
//! descriptive statistics, model-quality metrics, k-fold cross-validation,
//! and feature-selection strategies (Spearman top-k, greedy forward
//! selection).
//!
//! The paper learns per-frequency CPU power models with a *multivariate
//! regression* over hardware-performance-counter rates, and proposes (as
//! future work) *Spearman rank correlation* to automatically pick the
//! counters most correlated with power. Everything needed for both lives
//! here, self-contained and dependency-free.
//!
//! ```
//! use mathkit::linreg::LinearModel;
//! use mathkit::matrix::Matrix;
//!
//! # fn main() -> Result<(), mathkit::Error> {
//! // y = 1 + 2*x0 + 3*x1
//! let x = Matrix::from_rows(&[
//!     vec![0.0, 0.0],
//!     vec![1.0, 0.0],
//!     vec![0.0, 1.0],
//!     vec![1.0, 1.0],
//! ])?;
//! let y = vec![1.0, 3.0, 4.0, 6.0];
//! let model = LinearModel::fit(&x, &y)?;
//! assert!((model.intercept() - 1.0).abs() < 1e-9);
//! assert!((model.coefficients()[0] - 2.0).abs() < 1e-9);
//! assert!((model.coefficients()[1] - 3.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod changepoint;
pub mod correlation;
pub mod cv;
pub mod linreg;
pub mod matrix;
pub mod metrics;
pub mod par;
pub mod select;
pub mod stats;

mod error;

pub use error::Error;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;
