//! Property-based tests for the streaming change-point detectors: across
//! many seeds, stationary Gaussian noise never alarms, an injected mean
//! step is always detected, and NaN samples are rejected without
//! corrupting state.

use mathkit::changepoint::{Cusum, PageHinkley};
use proptest::prelude::*;

/// Deterministic standard-normal stream: SplitMix64 bits fed through
/// Box–Muller. Keeps the tests reproducible per seed with no RNG crate.
struct Gaussian {
    state: u64,
}

impl Gaussian {
    fn new(seed: u64) -> Gaussian {
        Gaussian {
            state: seed.wrapping_add(0x9e3779b97f4a7c15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn uniform(&mut self) -> f64 {
        // (0, 1]: never zero, so ln() below is finite.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 + f64::MIN_POSITIVE
    }

    fn standard_normal(&mut self) -> f64 {
        let u1 = self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stationary N(mean, sigma²) noise with paper-style tuning
    /// (k = sigma/2, h = 12·sigma) stays silent for thousands of samples.
    #[test]
    fn cusum_no_false_alarms_on_stationary_gaussian(
        seed in 0u64..=u64::MAX,
        mean in -50.0f64..50.0,
        sigma in 0.05f64..2.0,
    ) {
        let mut rng = Gaussian::new(seed);
        let mut d = Cusum::new(mean, sigma / 2.0, 12.0 * sigma).expect("valid params");
        for _ in 0..4000 {
            let x = mean + sigma * rng.standard_normal();
            prop_assert!(!d.update(x).expect("finite sample"));
        }
        prop_assert_eq!(d.alarms(), 0);
    }

    /// A sustained mean step of 3·sigma is always caught, and quickly.
    #[test]
    fn cusum_always_detects_injected_step(
        seed in 0u64..=u64::MAX,
        mean in -50.0f64..50.0,
        sigma in 0.05f64..2.0,
        direction in 0u8..2,
    ) {
        let mut rng = Gaussian::new(seed);
        let mut d = Cusum::new(mean, sigma / 2.0, 12.0 * sigma).expect("valid params");
        for _ in 0..500 {
            d.update(mean + sigma * rng.standard_normal()).expect("finite");
        }
        let step = if direction == 1 { 3.0 * sigma } else { -3.0 * sigma };
        let mut detected_at = None;
        for i in 0..200 {
            let x = mean + step + sigma * rng.standard_normal();
            if d.update(x).expect("finite") {
                detected_at = Some(i);
                break;
            }
        }
        let at = detected_at.expect("3-sigma step must be detected");
        prop_assert!(at < 50, "detection took {at} samples");
    }

    /// Page–Hinkley with matching tuning: silent on stationary noise.
    #[test]
    fn page_hinkley_no_false_alarms_on_stationary_gaussian(
        seed in 0u64..=u64::MAX,
        mean in -50.0f64..50.0,
        sigma in 0.05f64..2.0,
    ) {
        let mut rng = Gaussian::new(seed);
        let mut d = PageHinkley::new(sigma / 2.0, 25.0 * sigma).expect("valid params");
        for _ in 0..4000 {
            let x = mean + sigma * rng.standard_normal();
            prop_assert!(!d.update(x).expect("finite sample"));
        }
        prop_assert_eq!(d.alarms(), 0);
    }

    /// Page–Hinkley always detects a sustained 3·sigma step.
    #[test]
    fn page_hinkley_always_detects_injected_step(
        seed in 0u64..=u64::MAX,
        mean in -50.0f64..50.0,
        sigma in 0.05f64..2.0,
        direction in 0u8..2,
    ) {
        let mut rng = Gaussian::new(seed);
        let mut d = PageHinkley::new(sigma / 2.0, 25.0 * sigma).expect("valid params");
        for _ in 0..500 {
            d.update(mean + sigma * rng.standard_normal()).expect("finite");
        }
        let step = if direction == 1 { 3.0 * sigma } else { -3.0 * sigma };
        let mut detected = false;
        for _ in 0..400 {
            let x = mean + step + sigma * rng.standard_normal();
            if d.update(x).expect("finite") {
                detected = true;
                break;
            }
        }
        prop_assert!(detected, "3-sigma step must be detected");
    }

    /// Non-finite samples are rejected and leave the detectors exactly
    /// where they were: the same stream with NaN attempts interleaved
    /// produces the same alarm count.
    #[test]
    fn nan_samples_rejected_without_state_change(
        seed in 0u64..=u64::MAX,
        bad_idx in 0usize..3,
    ) {
        let bad = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][bad_idx];
        let mut rng = Gaussian::new(seed);
        let samples: Vec<f64> = (0..300).map(|_| rng.standard_normal()).collect();
        let mut clean = Cusum::new(0.0, 0.5, 4.0).expect("valid");
        let mut dirty = clean.clone();
        let mut clean_ph = PageHinkley::new(0.25, 12.0).expect("valid");
        let mut dirty_ph = clean_ph.clone();
        for &x in &samples {
            prop_assert!(dirty.update(bad).is_err());
            prop_assert!(dirty_ph.update(bad).is_err());
            let a = clean.update(x).expect("finite");
            let b = dirty.update(x).expect("finite");
            prop_assert_eq!(a, b);
            let c = clean_ph.update(x).expect("finite");
            let d = dirty_ph.update(x).expect("finite");
            prop_assert_eq!(c, d);
        }
        prop_assert_eq!(clean.alarms(), dirty.alarms());
        prop_assert_eq!(clean_ph.alarms(), dirty_ph.alarms());
    }
}
