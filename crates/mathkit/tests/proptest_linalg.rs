//! Property-based tests for the linear-algebra and statistics substrate.

use mathkit::correlation::{kendall, pearson, spearman};
use mathkit::linreg::LinearModel;
use mathkit::matrix::Matrix;
use mathkit::stats::{mean, median, quantile, ranks, Running};
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, len)
}

fn small_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
        prop::collection::vec(prop::collection::vec(-100.0f64..100.0, c..=c), r..=r)
            .prop_map(|rows| Matrix::from_rows(&rows).expect("rectangular"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_involution(m in small_matrix()) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn product_transpose_identity(
        rows in prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 3), 2..5),
        rhs in prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 4), 3),
    ) {
        let a = Matrix::from_rows(&rows).expect("rectangular");
        let b = Matrix::from_rows(&rhs).expect("rectangular");
        let ab_t = a.matmul(&b).expect("conformable").transpose();
        let bt_at = b.transpose().matmul(&a.transpose()).expect("conformable");
        prop_assert!((&ab_t - &bt_at).max_abs() < 1e-9);
    }

    #[test]
    fn solve_recovers_solution(
        x in prop::collection::vec(-10.0f64..10.0, 3),
        noise in prop::collection::vec(0.1f64..5.0, 3),
    ) {
        // Diagonally dominant matrix: guaranteed well-conditioned.
        let mut rows = vec![vec![0.0; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                rows[i][j] = if i == j { 20.0 + noise[i] } else { noise[(i + j) % 3] };
            }
        }
        let a = Matrix::from_rows(&rows).expect("square");
        let b = a.matvec(&x).expect("conformable");
        let got = a.solve(&b).expect("well-conditioned");
        for (g, w) in got.iter().zip(&x) {
            prop_assert!((g - w).abs() < 1e-6, "{g} vs {w}");
        }
    }

    #[test]
    fn qr_reconstructs(
        rows in prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 3), 4..8),
    ) {
        let a = Matrix::from_rows(&rows).expect("rectangular");
        let (q, r) = a.qr().expect("tall matrix");
        let back = q.matmul(&r).expect("conformable");
        prop_assert!((&a - &back).max_abs() < 1e-8);
    }

    #[test]
    fn ols_residuals_orthogonal_to_fit(
        xs in prop::collection::vec(-100.0f64..100.0, 8..20),
        slope in -5.0f64..5.0,
        intercept in -50.0f64..50.0,
    ) {
        // y has an exact linear part plus deterministic wiggle.
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let y: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| intercept + slope * x + ((i % 3) as f64 - 1.0))
            .collect();
        let x = Matrix::from_rows(&rows).expect("rectangular");
        if let Ok(model) = LinearModel::fit(&x, &y) {
            // Normal equations ⇒ residuals sum to ~0 and are orthogonal
            // to the regressor.
            let res = model.residuals();
            let sum: f64 = res.iter().sum();
            let dot: f64 = res.iter().zip(&xs).map(|(r, x)| r * x).sum();
            let scale = 1.0 + xs.iter().map(|v| v.abs()).fold(0.0, f64::max);
            prop_assert!(sum.abs() < 1e-6 * res.len() as f64 * scale);
            prop_assert!(dot.abs() < 1e-5 * res.len() as f64 * scale * scale);
        }
    }

    #[test]
    fn quantiles_are_ordered_and_bounded(v in finite_vec(1..50), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let a = quantile(&v, lo).expect("valid");
        let b = quantile(&v, hi).expect("valid");
        prop_assert!(a <= b);
        let min = v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min && b <= max);
    }

    #[test]
    fn median_between_min_and_max(v in finite_vec(1..50)) {
        let m = median(&v).expect("non-empty");
        let min = v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= min && m <= max);
    }

    #[test]
    fn ranks_are_a_weak_ordering(v in finite_vec(1..40)) {
        let r = ranks(&v);
        prop_assert_eq!(r.len(), v.len());
        // Rank sum is invariant: n(n+1)/2.
        let n = v.len() as f64;
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
        // Order-consistency.
        for i in 0..v.len() {
            for j in 0..v.len() {
                if v[i] < v[j] {
                    prop_assert!(r[i] < r[j]);
                }
                if v[i] == v[j] {
                    prop_assert!((r[i] - r[j]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn correlations_bounded(a in finite_vec(2..40), b in finite_vec(2..40)) {
        let n = a.len().min(b.len());
        if n >= 2 {
            let (a, b) = (&a[..n], &b[..n]);
            for r in [pearson(a, b), spearman(a, b), kendall(a, b)] {
                let r = r.expect("valid inputs");
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "{r}");
            }
        }
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(v in prop::collection::vec(-100.0f64..100.0, 3..30)) {
        let y: Vec<f64> = v.iter().map(|x| x * 3.0 + 7.0).collect();
        // exp is strictly monotone: Spearman(v, exp-ish(v)) == Spearman(v, v) == 1 when no ties.
        let mut distinct = v.clone();
        distinct.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        distinct.dedup();
        if distinct.len() == v.len() {
            let s1 = spearman(&v, &y).expect("valid");
            prop_assert!((s1 - 1.0).abs() < 1e-9);
            let z: Vec<f64> = v.iter().map(|x| (x / 50.0).exp()).collect();
            let s2 = spearman(&v, &z).expect("valid");
            prop_assert!((s2 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn running_matches_batch_stats(v in finite_vec(2..60)) {
        let mut r = Running::new();
        r.extend(v.iter().copied());
        prop_assert!((r.mean() - mean(&v).expect("non-empty")).abs() < 1e-6);
        let batch_var = mathkit::stats::variance(&v).expect("n >= 2");
        prop_assert!((r.variance() - batch_var).abs() < 1e-4 * (1.0 + batch_var));
    }
}
