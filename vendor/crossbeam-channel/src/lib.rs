//! Minimal offline stand-in for the `crossbeam-channel` crate, backed by
//! `std::sync::mpsc`. Provides the unbounded MPSC surface the middleware
//! actor mailboxes use; `select!` and bounded channels are out of scope.

use std::sync::mpsc;

pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

/// The sending half of an unbounded channel.
pub struct Sender<T>(mpsc::Sender<T>);

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Sends a message, failing only when every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.0.send(msg)
    }
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv()
    }

    /// Iterates over messages until every sender is gone.
    pub fn iter(&self) -> mpsc::Iter<'_, T> {
        self.0.iter()
    }
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn clone_senders_share_channel() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}
