//! No-op derive macros standing in for `serde_derive` in this offline
//! workspace. The repo serializes through hand-written text formats (see
//! `PerFrequencyPowerModel::to_text`), so the derives only need to accept
//! the attribute positions — they emit no code.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
