//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range strategies
//! over primitives, tuple strategies up to arity 8,
//! `prop::collection::vec`, `prop_map`/`prop_flat_map`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a fixed seed (so
//! runs are fully deterministic), there is no shrinking — a failing case
//! reports its case number and panics — and rejected assumptions simply
//! draw a fresh case.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value` from a random source.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, builds a second strategy from it, and draws
        /// from that.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Always returns a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty f64 range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element`-generated values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() % span as u64) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates vectors whose length falls in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Deterministic case runner (no shrinking, no persistence).

    use crate::strategy::Strategy;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Message used by `prop_assume!` to reject a generated case.
    pub const ASSUME_REJECTED: &str = "__proptest_stub_assume_rejected__";

    /// Runner configuration; construct via [`Config::with_cases`] or
    /// [`Config::default`] (256 cases, like upstream).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    /// The random source handed to strategies (SplitMix64, fixed seed per
    /// test so failures reproduce).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator for one test function.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn is_assume_reject(payload: &(dyn std::any::Any + Send)) -> bool {
        payload
            .downcast_ref::<String>()
            .map(|s| s.contains(ASSUME_REJECTED))
            .or_else(|| {
                payload
                    .downcast_ref::<&str>()
                    .map(|s| s.contains(ASSUME_REJECTED))
            })
            .unwrap_or(false)
    }

    /// Runs `body` against `config.cases` generated cases. Panics (with
    /// the case number prepended to stderr) on the first failing case;
    /// assumption rejections draw fresh cases, up to a global cap.
    pub fn run<S: Strategy>(
        test_name: &str,
        config: &Config,
        strategy: &S,
        body: impl Fn(S::Value),
    ) {
        // Seed differs per test name so sibling tests explore different
        // corners, yet every run of the same binary is identical.
        let mut seed = 0xC0FF_EE00_D15E_A5E5u64;
        for b in test_name.bytes() {
            seed = seed.rotate_left(8) ^ u64::from(b).wrapping_mul(0x100_0000_01B3);
        }
        let mut rng = TestRng::new(seed);

        let max_rejects = config.cases.saturating_mul(16).max(1024);
        let mut rejects = 0u32;
        let mut case = 0u32;
        while case < config.cases {
            let value = strategy.new_value(&mut rng);
            match catch_unwind(AssertUnwindSafe(|| body(value))) {
                Ok(()) => case += 1,
                Err(payload) if is_assume_reject(payload.as_ref()) => {
                    rejects += 1;
                    assert!(
                        rejects <= max_rejects,
                        "{test_name}: too many prop_assume! rejections ({rejects})"
                    );
                }
                Err(payload) => {
                    eprintln!("{test_name}: failing case #{case} (seed {seed:#x})");
                    resume_unwind(payload);
                }
            }
        }
    }
}

/// Declares property tests. Mirrors upstream's grammar for the forms used
/// in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0.0f64..1.0, n in 1usize..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@impl $config:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config = $config;
                let __pt_strategy = ($($strat,)*);
                $crate::test_runner::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    &__pt_config,
                    &__pt_strategy,
                    |($($arg,)*)| $body,
                );
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Rejects the current case (a fresh one is generated instead).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            panic!("{}", $crate::test_runner::ASSUME_REJECTED);
        }
    };
}

pub mod prelude {
    //! Everything a property-test module needs.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias matching upstream's `prop::` paths
    /// (`prop::collection::vec`, …).
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 10.0f64..20.0, n in 3usize..7) {
            prop_assert!((10.0..20.0).contains(&x));
            prop_assert!((3..7).contains(&n));
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn map_and_flat_map_compose(
            v in (1usize..4).prop_flat_map(|n| prop::collection::vec(0.0f64..1.0, n..=n)),
            doubled in (0u32..10).prop_map(|x| x * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn assume_rejects_and_regenerates(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = (0.0f64..1.0, 0u64..1000);
        let mut a = crate::test_runner::TestRng::new(5);
        let mut b = crate::test_runner::TestRng::new(5);
        for _ in 0..10 {
            assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
        }
    }
}
