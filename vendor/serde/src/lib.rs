//! Minimal offline stand-in for `serde`. The workspace's on-disk formats
//! are hand-written text codecs; the `Serialize`/`Deserialize` derives
//! here are no-ops from the sibling `serde_derive` stub, kept so struct
//! definitions stay source-compatible with the real crate.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
