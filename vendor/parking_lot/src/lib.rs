//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Only the surface this workspace uses is provided: a [`Mutex`] whose
//! `lock()` never returns a poison error (a poisoned std mutex is
//! recovered transparently, matching parking_lot's no-poisoning model).

use std::sync::TryLockError;

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
