//! Minimal offline stand-in for the `rand` crate.
//!
//! Deterministic per seed (which is all the simulations require — meter
//! noise, jitter), with the subset of the 0.8 API the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over primitive ranges, and
//! `Rng::gen::<f64>()`. The generator is SplitMix64 — tiny, fast, and
//! passes the statistical bar a simulated ADC needs. Sequences differ
//! from upstream `rand`'s ChaCha-based `StdRng`; nothing in this repo
//! depends on upstream byte streams.

use std::ops::{Range, RangeInclusive};

/// The raw generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value of a [`Standard`]-distributed type (`f64` in
    /// `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): one add, three xorshift
            // multiplies; equidistributed over the full 2^64 period.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_range_stays_in_bounds_and_mixes() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v = r.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&v));
            sum += v;
        }
        let mean = sum / 1000.0;
        assert!((mean - 2.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_endpoints() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..50 {
            let v = r.gen_range(5u64..=6);
            assert!(v == 5 || v == 6);
        }
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
