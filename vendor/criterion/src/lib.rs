//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements the measurement surface this workspace's benches use —
//! `benchmark_group`, `bench_function`, `Bencher::iter`/`iter_batched`,
//! `Throughput`, `criterion_group!`/`criterion_main!` — with a simple
//! time-budgeted wall-clock loop instead of criterion's statistical
//! machinery. Each benchmark warms up briefly, then runs its routine for
//! a fixed budget and reports mean time per iteration (and throughput
//! when configured).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering, as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput labelling for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hints for [`Bencher::iter_batched`]; the stub runs one
/// setup per routine invocation regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The measurement driver handed to each benchmark closure.
pub struct Bencher {
    /// Accumulated measured time.
    elapsed: Duration,
    /// Iterations measured.
    iters: u64,
    /// Measurement budget.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Bencher {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Measures `routine` repeatedly until the time budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup iteration outside the measurement.
        std_black_box(routine());
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t = Instant::now();
            std_black_box(routine());
            self.elapsed += t.elapsed();
            self.iters += 1;
        }
    }

    /// Measures `routine` over fresh `setup` outputs, excluding setup time.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        std_black_box(routine(setup()));
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            std_black_box(routine(input));
            self.elapsed += t.elapsed();
            self.iters += 1;
        }
    }
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

fn run_one(
    group: Option<&str>,
    name: &str,
    throughput: Option<Throughput>,
    budget: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let mut b = Bencher::new(budget);
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<48} no iterations completed");
        return;
    }
    let per_iter = b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX).max(1);
    let mut line = format!(
        "{label:<48} time: [{}]  ({} iters)",
        fmt_time(per_iter),
        b.iters
    );
    if let Some(t) = throughput {
        let secs = per_iter.as_secs_f64();
        if secs > 0.0 {
            let (n, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            line.push_str(&format!("  thrpt: [{}]", fmt_rate(n as f64 / secs, unit)));
        }
    }
    println!("{line}");
}

/// Top-level benchmark driver, as `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            budget: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            budget: self.budget,
        }
    }

    /// Runs a free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(None, name, None, self.budget, &mut f);
        self
    }

    /// Accepted for API compatibility; the stub has no CLI.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named group of benchmarks sharing throughput/budget settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    budget: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub is time-budgeted, so the
    /// requested sample count only scales the budget mildly.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let n = n.clamp(10, 100) as u64;
        self.budget = Duration::from_millis(150 * n.min(20));
        self
    }

    /// Sets the measurement budget directly.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(Some(&self.name), name, self.throughput, self.budget, &mut f);
        self
    }

    /// Ends the group (formatting no-op in the stub).
    pub fn finish(self) {}
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_iterations() {
        let mut b = Bencher::new(Duration::from_millis(20));
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
        });
        assert!(b.iters > 0);
        assert!(n > b.iters, "warmup iteration ran too");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(Duration::from_millis(10));
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::PerIteration);
        assert!(b.iters > 0);
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Elements(10));
        group.sample_size(10);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
