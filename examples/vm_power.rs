//! Virtual-machine power attribution — the §5 follow-up the paper names
//! ("they are more and more used and a lot of work still remains to
//! optimize their power consumptions"). Two "VMs" — control groups of
//! processes, pinned to disjoint cores like a static vCPU placement —
//! run different tenants; PowerAPI attributes watts per VM.
//!
//! Run: `cargo run --release --example vm_power`

use powerapi_suite::os_sim::kernel::Kernel;
use powerapi_suite::os_sim::task::SteadyTask;
use powerapi_suite::powerapi::aggregator::GroupAggregator;
use powerapi_suite::powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi_suite::powerapi::model::learn::{learn_model, LearnConfig};
use powerapi_suite::powerapi::msg::Topic;
use powerapi_suite::powerapi::runtime::PowerApi;
use powerapi_suite::simcpu::presets;
use powerapi_suite::simcpu::units::Nanos;
use powerapi_suite::simcpu::workunit::WorkUnit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Learning the energy profile…");
    let model = learn_model(presets::intel_i3_2120(), &LearnConfig::default())?;

    let mut kernel = Kernel::new(presets::intel_i3_2120());

    // VM alpha: a busy web stack on core 0 (logical cpus 0-1).
    let web = kernel.spawn_in_group(
        "web",
        "vm-alpha",
        vec![SteadyTask::boxed(WorkUnit::mixed(0.35, 32_768.0, 0.9))],
    );
    let cache = kernel.spawn_in_group(
        "cache",
        "vm-alpha",
        vec![SteadyTask::boxed(WorkUnit::memory_intensive(65_536.0, 0.6))],
    );
    // VM beta: a light batch job on core 1 (logical cpus 2-3).
    let batch = kernel.spawn_in_group(
        "batch",
        "vm-beta",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.35))],
    );
    kernel.pin_process(web, vec![0, 1])?;
    kernel.pin_process(cache, vec![0, 1])?;
    kernel.pin_process(batch, vec![2, 3])?;

    // Group membership for the aggregator, straight from the kernel.
    let membership: Vec<_> = ["vm-alpha", "vm-beta"]
        .iter()
        .flat_map(|g| {
            kernel
                .pids_in_group(g)
                .into_iter()
                .map(move |p| (p, g.to_string()))
        })
        .collect();

    let mut papi = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(model))
        .report_to_memory()
        .with_actor(
            "vm-aggregator",
            Box::new(GroupAggregator::new(membership)),
            vec![Topic::Power],
        )
        .build()?;
    for pid in [web, cache, batch] {
        papi.monitor(pid)?;
    }
    papi.run_for(Nanos::from_secs(30))?;
    let outcome = papi.finish()?;

    println!(
        "\n{:<10} {:>14} {:>14}",
        "time_s", "vm-alpha_w", "vm-beta_w"
    );
    let alpha = outcome.group_estimates("vm-alpha");
    let beta = outcome.group_estimates("vm-beta");
    for ((t, a), (_, b)) in alpha.iter().zip(&beta).step_by(5) {
        println!(
            "{:<10.0} {:>14.2} {:>14.2}",
            t.as_secs_f64(),
            a.as_f64(),
            b.as_f64()
        );
    }
    let avg = |v: &[(Nanos, powerapi_suite::simcpu::Watts)]| {
        v.iter().map(|(_, w)| w.as_f64()).sum::<f64>() / v.len().max(1) as f64
    };
    println!(
        "\nbilling summary: vm-alpha {:.2} W avg, vm-beta {:.2} W avg \
         (+ {:.2} W shared idle floor to apportion by policy)",
        avg(&alpha),
        avg(&beta),
        31.5,
    );
    Ok(())
}
