//! Quickstart: estimate the power of one process in five steps.
//!
//! 1. Boot a simulated machine (the paper's i3-2120 testbed).
//! 2. Spawn a process on the simulated kernel.
//! 3. Build a PowerAPI pipeline with the paper's published power model.
//! 4. Run for a few seconds of simulated time.
//! 5. Read per-process and machine estimates back.
//!
//! Run: `cargo run --release --example quickstart`

use powerapi_suite::os_sim::kernel::Kernel;
use powerapi_suite::os_sim::task::SteadyTask;
use powerapi_suite::powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi_suite::powerapi::model::power_model::PerFrequencyPowerModel;
use powerapi_suite::powerapi::runtime::PowerApi;
use powerapi_suite::simcpu::presets;
use powerapi_suite::simcpu::units::Nanos;
use powerapi_suite::simcpu::workunit::WorkUnit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The machine from Table 1.
    let mut kernel = Kernel::new(presets::intel_i3_2120());

    // 2. A process that burns one core.
    let pid = kernel.spawn(
        "busy-loop",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(1.0))],
    );

    // 3. Sensor → Formula → Aggregator → Reporter, with the exact model
    //    the paper publishes for this processor (idle 31.48 W; at
    //    3.30 GHz: 2.22e-9·i + 2.48e-8·r + 1.87e-7·m).
    let model = PerFrequencyPowerModel::paper_i3_example();
    println!("Using the paper's published model:\n{model}");
    let mut papi = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(model))
        .report_to_memory()
        .build()?;
    papi.monitor(pid)?;

    // 4. Ten seconds of simulated time → ten one-second estimates.
    papi.run_for(Nanos::from_secs(10))?;
    let outcome = papi.finish()?;

    // 5. Results.
    println!("{:<8} {:>14} {:>16}", "time_s", "process_w", "machine_w");
    let machine = outcome.machine_estimates();
    let process = outcome.process_estimates(pid);
    for ((t, mw), (_, pw)) in machine.iter().zip(&process) {
        println!(
            "{:<8.0} {:>14.2} {:>16.2}",
            t.as_secs_f64(),
            pw.as_f64(),
            mw.as_f64()
        );
    }
    println!(
        "\nThe meter (PowerSpy) saw {} samples; mean {:.2} W",
        outcome.meter.len(),
        outcome
            .meter_trace()
            .mean()
            .map(|w| w.as_f64())
            .unwrap_or(0.0)
    );
    Ok(())
}
