//! The Figure 1 learning process, end to end, with full visibility:
//! stress workloads × every DVFS frequency × (HPC rates, PowerSpy watts)
//! → multivariate regression → one linear power model per frequency —
//! then save/load the profile and sanity-check it against the meter.
//!
//! Run: `cargo run --release --example model_learning`

use powerapi_suite::powerapi::model::learn::{learn_model, measure_idle_power, LearnConfig};
use powerapi_suite::powerapi::model::power_model::PerFrequencyPowerModel;
use powerapi_suite::powerapi::model::sampling::{collect, pick_frequencies};
use powerapi_suite::simcpu::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = presets::intel_i3_2120();
    let cfg = LearnConfig::default();

    println!("Step 1 — measure the idle floor (the paper's 31.48 W term):");
    let idle = measure_idle_power(&machine, &cfg)?;
    println!("  idle = {idle:.2} W\n");

    println!("Step 2 — stress the processor at every frequency:");
    let freqs = pick_frequencies(&machine, cfg.sampling.max_frequencies);
    println!(
        "  {} workloads x {} frequencies x {} windows",
        cfg.sampling.grid.len(),
        freqs.len(),
        cfg.sampling.samples_per_point
    );
    let set = collect(&machine, &cfg.sampling)?;
    println!(
        "  collected {} (rates, watts) observations\n",
        set.samples.len()
    );

    // A peek at the raw data the regression sees.
    println!("  sample observations at {}:", freqs[freqs.len() - 1]);
    println!(
        "  {:<16} {:>14} {:>14} {:>12} {:>9}",
        "workload", "inst/s", "llc_ref/s", "llc_miss/s", "watts"
    );
    for s in set
        .samples
        .iter()
        .filter(|s| s.frequency == freqs[freqs.len() - 1])
        .take(6)
    {
        println!(
            "  {:<16} {:>14.3e} {:>14.3e} {:>12.3e} {:>9.2}",
            s.workload, s.rates[0], s.rates[1], s.rates[2], s.power_w
        );
    }

    println!("\nStep 3 — multivariate regression per frequency:");
    let model = learn_model(machine, &cfg)?;
    print!("{model}");

    println!("Step 4 — persist and reload the profile:");
    let text = model.to_text();
    let reloaded = PerFrequencyPowerModel::from_text(&text)?;
    assert_eq!(reloaded, model);
    println!("  round-tripped {} bytes of profile text\n", text.len());

    println!("The paper's published 3.30 GHz equation, for comparison:");
    print!("{}", PerFrequencyPowerModel::paper_i3_example());
    Ok(())
}
