//! Energy-aware scheduling decisions — the paper's motivation: "act and
//! optimize their energy consumptions by playing with the scheduling"
//! (§1). The same bursty workload runs under three cpufreq governors;
//! PowerAPI's substrate exposes the resulting energy and per-frequency
//! residency so the trade-off is visible.
//!
//! Run: `cargo run --release --example governor_energy`

use powerapi_suite::os_sim::governor::{CpufreqGovernor, Ondemand, Performance, Powersave};
use powerapi_suite::os_sim::kernel::Kernel;
use powerapi_suite::os_sim::task::PeriodicTask;
use powerapi_suite::simcpu::presets;
use powerapi_suite::simcpu::units::{CpuId, Nanos};
use powerapi_suite::simcpu::workunit::WorkUnit;

struct Outcome {
    name: &'static str,
    energy_j: f64,
    instructions: u64,
}

fn run(governor: Box<dyn CpufreqGovernor>) -> Outcome {
    let name = governor.name();
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    kernel.set_governor(governor);
    // A bursty half-duty workload: the interesting case for DVFS.
    kernel.spawn(
        "bursty",
        vec![PeriodicTask::boxed(
            WorkUnit::mixed(0.3, 16_384.0, 1.0),
            Nanos::from_millis(200),
            0.5,
        )],
    );
    for _ in 0..30_000 {
        kernel.tick(Nanos::from_millis(1));
    }
    let instructions: u64 = (0..kernel.machine().topology().logical_cpus())
        .map(|c| {
            kernel
                .machine()
                .counters(CpuId(c))
                .expect("valid cpu")
                .read(powerapi_suite::simcpu::counters::HwCounter::Instructions)
        })
        .sum();
    Outcome {
        name,
        energy_j: kernel.machine().machine_energy().as_f64(),
        instructions,
    }
}

fn main() {
    println!("30 s of a bursty workload under each cpufreq governor:\n");
    let outcomes = [
        run(Box::new(Performance)),
        run(Box::new(Ondemand::new(2))),
        run(Box::new(Powersave)),
    ];
    println!(
        "{:<14} {:>12} {:>16} {:>18}",
        "governor", "energy_J", "instructions", "nJ_per_instruction"
    );
    for o in &outcomes {
        println!(
            "{:<14} {:>12.1} {:>16} {:>18.3}",
            o.name,
            o.energy_j,
            o.instructions,
            o.energy_j * 1e9 / o.instructions.max(1) as f64
        );
    }
    println!(
        "\nperformance finishes work fastest but burns the most joules; \
         powersave is frugal per second yet slow; ondemand tracks the burst \
         pattern — the energy/performance trade-off the paper wants \
         software to reason about."
    );
}
