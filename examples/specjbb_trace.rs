//! A compact Figure 3: run a SPECjbb2013-like benchmark under live
//! estimation and print an ASCII chart of measured vs estimated power.
//! (The full 2500 s version with gnuplot output is
//! `cargo run --release -p bench-suite --bin e3_figure3`.)
//!
//! Run: `cargo run --release --example specjbb_trace`

use powerapi_suite::os_sim::kernel::Kernel;
use powerapi_suite::powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi_suite::powerapi::model::learn::{learn_model, LearnConfig};
use powerapi_suite::powerapi::runtime::PowerApi;
use powerapi_suite::simcpu::presets;
use powerapi_suite::simcpu::units::Nanos;
use powerapi_suite::workloads::specjbb::{self, SpecJbbConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Learning the energy profile…");
    let model = learn_model(presets::intel_i3_2120(), &LearnConfig::default())?;

    println!("Running a 300 s SPECjbb2013 excerpt under live estimation…\n");
    let jbb = SpecJbbConfig {
        duration: Nanos::from_secs(300),
        ..SpecJbbConfig::default()
    };
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let pid = kernel.spawn("specjbb2013", specjbb::tasks(&jbb));
    let mut papi = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(model))
        .report_to_memory()
        .build()?;
    papi.monitor(pid)?;
    papi.run_for(jbb.duration)?;
    let outcome = papi.finish()?;

    let meter = outcome.meter_trace();
    let est = outcome.estimate_trace();
    let (actual, predicted) = meter.align(&est);

    // ASCII chart: one row per 10 s, 'o' = meter, 'x' = estimate.
    let (lo, hi) = (25.0, 90.0);
    let width = 60usize;
    let col = |w: f64| -> usize {
        (((w - lo) / (hi - lo)).clamp(0.0, 1.0) * (width - 1) as f64) as usize
    };
    println!("power (W): {lo:>5.0} {:->width$} {hi:.0}", "");
    for (i, (a, p)) in actual.iter().zip(&predicted).enumerate() {
        if i % 10 != 0 {
            continue;
        }
        let mut line = vec![b' '; width];
        line[col(*a)] = b'o';
        let cp = col(*p);
        line[cp] = if cp == col(*a) { b'*' } else { b'x' };
        println!("t={:>4}s    |{}|", i + 1, String::from_utf8_lossy(&line));
    }
    println!("\n  o = PowerSpy (measured)   x = PowerAPI (estimated)   * = overlap");

    let report = powerapi_suite::mathkit::metrics::ErrorReport::compute(&actual, &predicted)?;
    println!("\n  {report}");
    println!("  (the paper reports a 15 % median error on the full run)");
    Ok(())
}
