//! Process-level attribution: the paper's headline use case — "identifying
//! the largest power consumers and make informed decisions during the
//! scheduling" (§1). Three processes with very different behaviour run
//! side by side; PowerAPI attributes watts to each.
//!
//! Run: `cargo run --release --example process_monitoring`

use powerapi_suite::os_sim::kernel::Kernel;
use powerapi_suite::os_sim::process::Pid;
use powerapi_suite::os_sim::task::{PeriodicTask, SteadyTask};
use powerapi_suite::powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi_suite::powerapi::model::learn::{learn_model, LearnConfig};
use powerapi_suite::powerapi::runtime::PowerApi;
use powerapi_suite::simcpu::presets;
use powerapi_suite::simcpu::units::Nanos;
use powerapi_suite::simcpu::workunit::WorkUnit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Learn this machine's energy profile first (Figure 1 pipeline;
    // `quick()` keeps the example fast — use `default()` for accuracy).
    println!("Learning the machine's energy profile…");
    let model = learn_model(presets::intel_i3_2120(), &LearnConfig::quick())?;
    println!("  idle = {:.2} W\n", model.idle_w());

    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let number_cruncher = kernel.spawn(
        "number-cruncher",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(1.0))],
    );
    let database = kernel.spawn(
        "database",
        vec![SteadyTask::boxed(WorkUnit::memory_intensive(
            131_072.0, 0.8,
        ))],
    );
    let web_server = kernel.spawn(
        "web-server",
        vec![PeriodicTask::boxed(
            WorkUnit::mixed(0.4, 8_192.0, 1.0),
            Nanos::from_millis(100),
            0.25, // bursty: 25 % duty cycle
        )],
    );

    let mut papi = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(model))
        .report_to_memory()
        .build()?;
    for pid in [number_cruncher, database, web_server] {
        papi.monitor(pid)?;
    }
    papi.run_for(Nanos::from_secs(30))?;
    let outcome = papi.finish()?;

    let total = |pid: Pid| -> f64 {
        let series = outcome.process_estimates(pid);
        series.iter().map(|(_, w)| w.as_f64()).sum::<f64>() / series.len().max(1) as f64
    };
    println!("{:<18} {:>12}", "process", "avg_watts");
    let mut ranked = vec![
        ("number-cruncher", total(number_cruncher)),
        ("database", total(database)),
        ("web-server", total(web_server)),
    ];
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (name, w) in &ranked {
        println!("{name:<18} {w:>12.2}");
    }
    println!(
        "\nLargest consumer: {} — the process a power-aware scheduler would act on.",
        ranked[0].0
    );
    Ok(())
}
