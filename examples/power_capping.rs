//! Closed-loop power capping: PowerAPI estimates actuating DVFS — the
//! "adaptive strategies that can cope with the sporadic nature of these
//! [renewable] energy feeds" the paper motivates (§2). A full-load
//! machine is held under a watt budget that tightens mid-run, as if a
//! cloud passed over the solar array.
//!
//! Run: `cargo run --release --example power_capping`

use powerapi_suite::os_sim::kernel::Kernel;
use powerapi_suite::os_sim::task::SteadyTask;
use powerapi_suite::powerapi::control::{CapControlActor, CappedGovernor, PowerCap};
use powerapi_suite::powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi_suite::powerapi::model::learn::{learn_model, LearnConfig};
use powerapi_suite::powerapi::msg::Topic;
use powerapi_suite::powerapi::runtime::PowerApi;
use powerapi_suite::simcpu::presets;
use powerapi_suite::simcpu::units::Nanos;
use powerapi_suite::simcpu::workunit::WorkUnit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Learning the energy profile…");
    let model = learn_model(presets::intel_i3_2120(), &LearnConfig::default())?;

    // Full load on every hardware thread: uncapped this draws ~60+ W.
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let cap = PowerCap::new(55.0);
    kernel.set_governor(Box::new(CappedGovernor::new(cap.clone())));
    let pid = kernel.spawn(
        "full-load",
        (0..4)
            .map(|_| SteadyTask::boxed(WorkUnit::cpu_intensive(1.0)))
            .collect(),
    );

    let mut papi = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(model))
        .report_to_memory()
        .with_actor(
            "cap-controller",
            Box::new(CapControlActor::new(cap.clone())),
            vec![Topic::Aggregate],
        )
        .build()?;
    papi.monitor(pid)?;

    println!("Phase 1 — 30 s under a 55 W budget…");
    papi.run_for(Nanos::from_secs(30))?;
    println!("Phase 2 — the feed drops: budget tightens to 45 W, 30 s…");
    cap.set_cap_w(45.0);
    papi.run_for(Nanos::from_secs(30))?;
    let outcome = papi.finish()?;

    println!(
        "\n{:>7} {:>10} {:>12} {:>10}",
        "time_s", "meter_w", "estimate_w", "cap_w"
    );
    let est = outcome.estimate_trace();
    for (at, w) in &outcome.meter {
        let t = at.as_secs_f64();
        if !(t as u64).is_multiple_of(5) {
            continue;
        }
        let e = est.at(*at).map(|x| x.as_f64()).unwrap_or(f64::NAN);
        let cap_now = if t <= 30.0 { 55.0 } else { 45.0 };
        println!("{t:>7.0} {:>10.2} {e:>12.2} {cap_now:>10.1}", w.as_f64());
    }

    // Summarize each phase's tail (after the controller settled).
    let tail = |lo: f64, hi: f64| {
        let v: Vec<f64> = outcome
            .meter
            .iter()
            .filter(|(at, _)| (lo..hi).contains(&at.as_secs_f64()))
            .map(|(_, w)| w.as_f64())
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!(
        "\nsettled mean power: phase 1 = {:.1} W (cap 55), phase 2 = {:.1} W (cap 45)",
        tail(15.0, 30.0),
        tail(45.0, 60.0)
    );
    println!("controller's last estimate: {:.1} W", cap.last_estimate_w());
    Ok(())
}
