//! Cross-substrate integration tests: the OS, perf, meter and RAPL layers
//! must agree with each other about what the machine did.

use powerapi_suite::os_sim::governor::Performance;
use powerapi_suite::os_sim::kernel::Kernel;
use powerapi_suite::os_sim::task::{SteadyTask, TimedTask};
use powerapi_suite::perf_sim::events::{Event, PAPER_EVENTS};
use powerapi_suite::perf_sim::pfm::Pfm;
use powerapi_suite::perf_sim::session::PerfSession;
use powerapi_suite::powermeter::powerspy::{PowerSpy, PowerSpyConfig};
use powerapi_suite::powermeter::rapl::Rapl;
use powerapi_suite::simcpu::counters::HwCounter;
use powerapi_suite::simcpu::presets;
use powerapi_suite::simcpu::units::{CpuId, Nanos, Watts};
use powerapi_suite::simcpu::workunit::WorkUnit;

const MS: Nanos = Nanos(1_000_000);

#[test]
fn meter_energy_matches_machine_energy() {
    // A noiseless meter integrating kernel power must reproduce the
    // machine's own energy ledger.
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    kernel.spawn(
        "app",
        vec![SteadyTask::boxed(WorkUnit::mixed(0.5, 16_384.0, 0.8))],
    );
    let mut meter = PowerSpy::new(
        PowerSpyConfig::default()
            .with_sample_period(Nanos::from_millis(100))
            .with_noise_std_w(0.0)
            .with_quantization_w(0.0),
    );
    let mut meter_energy = 0.0;
    for _ in 0..3_000 {
        let r = kernel.tick(MS);
        for s in meter.observe(kernel.machine().last_power(), r.now) {
            meter_energy += s.power.as_f64() * 0.1;
        }
    }
    let machine_energy = kernel.machine().machine_energy().as_f64();
    assert!(
        (meter_energy - machine_energy).abs() / machine_energy < 0.01,
        "meter {meter_energy:.2} J vs machine {machine_energy:.2} J"
    );
}

#[test]
fn rapl_energy_matches_package_energy() {
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    kernel.spawn("app", vec![SteadyTask::boxed(WorkUnit::cpu_intensive(1.0))]);
    let mut rapl = Rapl::open(kernel.machine().config()).expect("sandy bridge");
    for _ in 0..2_000 {
        let r = kernel.tick(MS);
        rapl.observe(r.package_power, MS);
    }
    let pkg = kernel.machine().package_energy().as_f64();
    assert!(
        (rapl.read_joules() - pkg).abs() / pkg < 0.01,
        "rapl {:.2} J vs package ledger {pkg:.2} J",
        rapl.read_joules()
    );
    // And the package is a strict subset of the machine.
    assert!(pkg < kernel.machine().machine_energy().as_f64());
}

#[test]
fn perf_attribution_partitions_machine_counters() {
    // Two monitored processes: their perf counts must sum to the machine
    // bank totals (single-tenant machine, no unmonitored work).
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    kernel.set_governor(Box::new(Performance));
    let a = kernel.spawn("a", vec![SteadyTask::boxed(WorkUnit::cpu_intensive(1.0))]);
    let b = kernel.spawn(
        "b",
        vec![SteadyTask::boxed(WorkUnit::memory_intensive(65_536.0, 1.0))],
    );
    let mut session = PerfSession::new(4);
    let ia = session
        .open(a, Event::Hardware(HwCounter::Instructions))
        .expect("open");
    let ib = session
        .open(b, Event::Hardware(HwCounter::Instructions))
        .expect("open");
    for _ in 0..500 {
        let r = kernel.tick(MS);
        session.observe(&r);
    }
    let perf_total = session.read(ia).expect("open").raw + session.read(ib).expect("open").raw;
    let bank_total: u64 = (0..4)
        .map(|c| {
            kernel
                .machine()
                .counters(CpuId(c))
                .expect("valid cpu")
                .read(HwCounter::Instructions)
        })
        .sum();
    assert_eq!(perf_total, bank_total);
}

#[test]
fn pfm_resolves_everything_the_sensor_needs() {
    for machine in [
        presets::intel_i3_2120(),
        presets::core2duo_e6600(),
        presets::xeon_smt_turbo(),
    ] {
        let pfm = Pfm::for_machine(&machine);
        for e in PAPER_EVENTS {
            let resolved = pfm
                .resolve(&e.to_string())
                .expect("paper events are generic");
            assert_eq!(resolved, e);
        }
    }
}

#[test]
fn process_exit_reflected_in_power_and_counters() {
    // A timed burst: power returns to idle after the process exits, and
    // counters stop advancing.
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    kernel.spawn(
        "burst",
        vec![TimedTask::boxed(
            WorkUnit::cpu_intensive(1.0),
            Nanos::from_millis(200),
        )],
    );
    let mut busy_power = Watts::ZERO;
    for _ in 0..200 {
        busy_power = kernel.tick(MS).power;
    }
    // Drain: the task is done; give the governor time to step down and
    // the die time to cool.
    let mut tail_power = Watts::ZERO;
    for _ in 0..2_000 {
        tail_power = kernel.tick(MS).power;
    }
    assert!(busy_power.as_f64() > tail_power.as_f64() + 5.0);
    assert!(
        (tail_power.as_f64() - 31.6).abs() < 2.0,
        "back to idle: {tail_power}"
    );
    let snapshot_a: u64 = (0..4)
        .map(|c| {
            kernel
                .machine()
                .counters(CpuId(c))
                .expect("valid cpu")
                .read(HwCounter::Instructions)
        })
        .sum();
    kernel.tick(MS);
    let snapshot_b: u64 = (0..4)
        .map(|c| {
            kernel
                .machine()
                .counters(CpuId(c))
                .expect("valid cpu")
                .read(HwCounter::Instructions)
        })
        .sum();
    assert_eq!(snapshot_a, snapshot_b, "no zombie execution");
}

#[test]
fn ondemand_saves_energy_versus_performance_on_light_load() {
    let energy = |perf: bool| {
        let mut kernel = Kernel::new(presets::intel_i3_2120());
        if perf {
            kernel.set_governor(Box::new(Performance));
        }
        kernel.spawn(
            "light",
            vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.15))],
        );
        for _ in 0..5_000 {
            kernel.tick(MS);
        }
        kernel.machine().machine_energy().as_f64()
    };
    let perf = energy(true);
    let ondemand = energy(false);
    assert!(
        ondemand < perf,
        "DVFS saves energy on light load: ondemand {ondemand:.1} J vs performance {perf:.1} J"
    );
}
