//! Cross-crate end-to-end tests: the full Figure 1 + Figure 2 story —
//! learn a model through the whole measurement stack, then estimate live
//! workloads through the whole actor pipeline, and check accuracy against
//! the (hidden) ground truth via the meter.

use powerapi_suite::mathkit::metrics::ErrorReport;
use powerapi_suite::os_sim::kernel::Kernel;
use powerapi_suite::os_sim::task::SteadyTask;
use powerapi_suite::powerapi::aggregator::Dimension;
use powerapi_suite::powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi_suite::powerapi::model::learn::{calibrate_cpuload, learn_model, LearnConfig};
use powerapi_suite::powerapi::runtime::PowerApi;
use powerapi_suite::simcpu::presets;
use powerapi_suite::simcpu::units::Nanos;
use powerapi_suite::simcpu::workunit::WorkUnit;
use powerapi_suite::workloads::specjbb::{self, SpecJbbConfig};

fn quick_learned_formula() -> PerFrequencyFormula {
    let model = learn_model(presets::intel_i3_2120(), &LearnConfig::quick())
        .expect("quick learning succeeds");
    PerFrequencyFormula::new(model)
}

#[test]
fn learned_model_estimates_steady_load_accurately() {
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let pid = kernel.spawn(
        "steady",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.9))],
    );
    let mut papi = PowerApi::builder(kernel)
        .formula(quick_learned_formula())
        .report_to_memory()
        .quantum(Nanos::from_millis(2))
        .clock_period(Nanos::from_millis(500))
        .build()
        .expect("pipeline builds");
    papi.monitor(pid).expect("monitoring starts");
    papi.run_for(Nanos::from_secs(10)).expect("run completes");
    let outcome = papi.finish().expect("clean shutdown");

    let (actual, predicted) = outcome.meter_trace().align(&outcome.estimate_trace());
    assert!(actual.len() >= 8, "meter produced samples");
    let report = ErrorReport::compute(&actual, &predicted).expect("aligned traces");
    // Steady in-distribution load: the learned model should be within a
    // few percent (thermal drift over 10 s stays small).
    assert!(report.median_ape < 10.0, "median error too high: {report}");
}

#[test]
fn specjbb_run_shows_paper_like_error_band() {
    let jbb = SpecJbbConfig {
        duration: Nanos::from_secs(120),
        ..SpecJbbConfig::default()
    };
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let pid = kernel.spawn("jbb", specjbb::tasks(&jbb));
    let mut papi = PowerApi::builder(kernel)
        .formula(quick_learned_formula())
        .report_to_memory()
        .quantum(Nanos::from_millis(2))
        .build()
        .expect("pipeline builds");
    papi.monitor(pid).expect("monitoring starts");
    papi.run_for(jbb.duration).expect("run completes");
    let outcome = papi.finish().expect("clean shutdown");

    let (actual, predicted) = outcome.meter_trace().align(&outcome.estimate_trace());
    let report = ErrorReport::compute(&actual, &predicted).expect("aligned traces");
    // Out-of-distribution mixed workload: double-digit-ish error, but the
    // trend must hold (the paper's Figure 3 observation).
    assert!(report.median_ape < 35.0, "unusably bad: {report}");
    let trend =
        powerapi_suite::mathkit::correlation::pearson(&actual, &predicted).expect("aligned");
    assert!(trend > 0.5, "estimates must track the trend: r = {trend}");
}

#[test]
fn hpc_distinguishes_equal_load_processes_where_cpuload_cannot() {
    // The paper's §3 argument: "the CPU load mostly indicates whether the
    // processor executes a job" — two fully-loaded processes look the
    // same to it, while HPC sees what they execute. Run an ALU spinner
    // and a cache thrasher (both 100 % load) under each formula and
    // compare the per-process attribution.
    let learned = quick_learned_formula();
    let cpuload =
        calibrate_cpuload(presets::intel_i3_2120(), &LearnConfig::quick()).expect("calibration");

    let attribution = |use_hpc: bool| -> (f64, f64) {
        let mut kernel = Kernel::new(presets::intel_i3_2120());
        let alu = kernel.spawn("alu", vec![SteadyTask::boxed(WorkUnit::cpu_intensive(1.0))]);
        let thrash = kernel.spawn(
            "thrash",
            vec![SteadyTask::boxed(WorkUnit::memory_intensive(
                262_144.0, 1.0,
            ))],
        );
        let mut builder = PowerApi::builder(kernel)
            .report_to_memory()
            .quantum(Nanos::from_millis(2))
            .clock_period(Nanos::from_millis(500))
            .dimension(Dimension::pid());
        builder = if use_hpc {
            builder.formula(learned.clone())
        } else {
            builder.formula(cpuload)
        };
        let mut papi = builder.build().expect("pipeline builds");
        papi.monitor(alu).expect("monitor alu");
        papi.monitor(thrash).expect("monitor thrash");
        papi.run_for(Nanos::from_secs(6)).expect("run");
        let outcome = papi.finish().expect("shutdown");
        let avg = |pid| {
            let v = papi_series(&outcome, pid);
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        (avg(alu), avg(thrash))
    };

    let (load_alu, load_thrash) = attribution(false);
    let load_ratio = load_alu / load_thrash.max(1e-9);
    assert!(
        (0.9..=1.1).contains(&load_ratio),
        "equal load looks identical to the CPU-load formula: {load_alu:.2} vs {load_thrash:.2}"
    );

    let (hpc_alu, hpc_thrash) = attribution(true);
    let hpc_ratio = hpc_alu / hpc_thrash.max(1e-9);
    assert!(
        !(0.77..=1.3).contains(&hpc_ratio),
        "HPC must tell the two apart: {hpc_alu:.2} vs {hpc_thrash:.2}"
    );
}

#[test]
fn rapl_tracks_package_but_misses_platform() {
    // RAPL (package) must read well below the wall meter (machine):
    // the platform floor is invisible to it — why the paper wants a
    // machine-level approach.
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let pid = kernel.spawn("app", vec![SteadyTask::boxed(WorkUnit::cpu_intensive(1.0))]);
    let mut papi = PowerApi::builder(kernel)
        .formula(quick_learned_formula())
        .report_to_memory()
        .quantum(Nanos::from_millis(2))
        .build()
        .expect("pipeline builds");
    papi.monitor(pid).expect("monitor");
    papi.run_for(Nanos::from_secs(5)).expect("run");
    let outcome = papi.finish().expect("shutdown");

    assert!(!outcome.rapl.is_empty(), "i3 exposes RAPL");
    let rapl_mean =
        outcome.rapl.iter().map(|(_, w)| w.as_f64()).sum::<f64>() / outcome.rapl.len() as f64;
    let meter_mean =
        outcome.meter.iter().map(|(_, w)| w.as_f64()).sum::<f64>() / outcome.meter.len() as f64;
    assert!(
        rapl_mean < meter_mean - 15.0,
        "package ({rapl_mean:.1} W) must sit well under the wall ({meter_mean:.1} W)"
    );
    assert!(rapl_mean > 3.0, "but RAPL is not zero: {rapl_mean:.1} W");
}

#[test]
fn monitoring_two_processes_attributes_more_power_to_the_heavier() {
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let heavy = kernel.spawn(
        "heavy",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(1.0))],
    );
    let light = kernel.spawn(
        "light",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.2))],
    );
    let mut papi = PowerApi::builder(kernel)
        .formula(quick_learned_formula())
        .report_to_memory()
        .quantum(Nanos::from_millis(2))
        .clock_period(Nanos::from_millis(500))
        .build()
        .expect("pipeline builds");
    papi.monitor(heavy).expect("monitor heavy");
    papi.monitor(light).expect("monitor light");
    papi.run_for(Nanos::from_secs(5)).expect("run");
    let outcome = papi.finish().expect("shutdown");

    let avg = |pid| {
        let series = papi_series(&outcome, pid);
        series.iter().sum::<f64>() / series.len().max(1) as f64
    };
    let h = avg(heavy);
    let l = avg(light);
    assert!(h > 3.0 * l, "heavy {h:.2} W vs light {l:.2} W");
}

fn papi_series(
    outcome: &powerapi_suite::powerapi::runtime::RunOutcome,
    pid: powerapi_suite::os_sim::process::Pid,
) -> Vec<f64> {
    outcome
        .process_estimates(pid)
        .iter()
        .map(|(_, w)| w.as_f64())
        .collect()
}
