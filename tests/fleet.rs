//! Fleet transport integration: a small simulated fleet streamed over
//! fault-injected links into sharded estimators, exercised end-to-end
//! through the public API. The invariants under test are the ones the
//! bench leans on: exact frame-accounting conservation under faults,
//! stale-hold degradation with recovery after a partition heals, and
//! the transport's journal/Prometheus observability surface.

use powerapi_suite::os_sim::kernel::Kernel;
use powerapi_suite::os_sim::task::SteadyTask;
use powerapi_suite::perf_sim::events::PAPER_EVENTS;
use powerapi_suite::powerapi::fleet::SimHostSource;
use powerapi_suite::powerapi::fleet::{
    Fleet, FleetConfig, LinkFaultConfig, LinkFaultKind, LinkFaultPlan, LinkWindow,
};
use powerapi_suite::powerapi::formula::cpuload::CpuLoadFormula;
use powerapi_suite::powerapi::host::SimHost;
use powerapi_suite::powerapi::telemetry::{EventKind, Telemetry};
use powerapi_suite::powermeter::powerspy::PowerSpyConfig;
use powerapi_suite::simcpu::presets;
use powerapi_suite::simcpu::units::Nanos;
use powerapi_suite::simcpu::workunit::WorkUnit;

const HOSTS: usize = 6;
const TICKS: u64 = 30;
/// Hosts 0..=2 lose both directions of their links over this window.
const PART_START: u64 = 10;
const PART_END: u64 = 18;

fn source(index: usize) -> Box<SimHostSource> {
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let load = 0.2 + 0.1 * index as f64;
    let pid = kernel.spawn(
        format!("svc{index}"),
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(load))],
    );
    let mut host = SimHost::new(kernel, PAPER_EVENTS.to_vec(), 4, PowerSpyConfig::default());
    host.monitor(pid).expect("monitor");
    Box::new(SimHostSource::new(host, Nanos::from_millis(250), 4))
}

/// A cgrouped host: gold tenant everywhere, bronze on the even hosts,
/// one stray process outside every cgroup (the catch-all contributor).
fn grouped_source(index: usize) -> Box<SimHostSource> {
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    kernel.cgroup_create("tenant-gold", 4096);
    kernel.cgroup_create("tenant-bronze", 1024);
    let mut pids = vec![kernel.spawn_in_cgroup(
        "web",
        "tenant-gold/svc-web",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(
            0.2 + 0.1 * index as f64,
        ))],
    )];
    if index.is_multiple_of(2) {
        pids.push(kernel.spawn_in_cgroup(
            "batch",
            "tenant-bronze/svc-batch",
            vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.3))],
        ));
    }
    pids.push(kernel.spawn(
        format!("stray{index}"),
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.1))],
    ));
    let mut host = SimHost::new(kernel, PAPER_EVENTS.to_vec(), 4, PowerSpyConfig::default());
    for pid in pids {
        host.monitor(pid).expect("monitor");
    }
    Box::new(SimHostSource::new(host, Nanos::from_millis(250), 4))
}

/// Builds the shared test fleet plus a handle to its telemetry hub
/// (`Telemetry` is an `Arc`-backed handle, so the clone observes
/// everything the fleet records).
fn faulty_fleet() -> (Fleet, Telemetry) {
    let fault = LinkFaultPlan::from_parts(
        0xF1EE_7E57,
        &LinkFaultConfig {
            drop_rate: 0.10,
            duplicate_rate: 0.05,
            corrupt_rate: 0.03,
            reorder_rate: 0.05,
            ..LinkFaultConfig::default()
        },
        vec![LinkWindow {
            kind: LinkFaultKind::Partition,
            start: PART_START,
            end: PART_END,
            host_lo: 0,
            host_hi: 2,
        }],
    );
    let cfg = FleetConfig {
        shards: 2,
        events: PAPER_EVENTS.to_vec(),
        fault,
        ..FleetConfig::default()
    };
    let sources = (0..HOSTS).map(|i| source(i) as _).collect();
    let telemetry = Telemetry::new();
    let fleet = Fleet::new(
        cfg,
        &CpuLoadFormula::new(30.0, 25.0),
        sources,
        telemetry.clone(),
    );
    (fleet, telemetry)
}

/// Every produced frame is accounted for — dropped, shed, corrupted,
/// duplicated, applied, or still in flight — even under drops,
/// duplicates, corruption, reordering and a partition window.
#[test]
fn conservation_holds_under_link_faults() {
    let (mut fleet, _telemetry) = faulty_fleet();
    let reports = fleet.run(TICKS);
    assert_eq!(reports.len(), TICKS as usize);
    fleet.assert_conserved();

    let stats = fleet.stats();
    assert!(stats.produced >= HOSTS as u64 * (TICKS - 1), "hosts report");
    assert!(stats.dropped_fault > 0, "drop faults fired");
    assert!(stats.dropped_partition > 0, "the partition severed frames");
    assert!(stats.retransmits > 0, "drops provoke retransmissions");
    assert!(stats.applied > 0, "frames still get through");
}

/// A partitioned host decays to stale (held at last-known-good with a
/// widening band) and recovers to fresh once the partition heals; both
/// transitions are journaled.
#[test]
fn partition_degrades_to_stale_and_recovers() {
    let (mut fleet, _telemetry) = faulty_fleet();
    let reports = fleet.run(TICKS);

    let worst_stale = reports
        .iter()
        .map(|r| r.hosts_stale)
        .max()
        .expect("non-empty run");
    assert!(worst_stale > 0, "the partition starves hosts to stale");
    let last = reports.last().expect("non-empty run");
    assert_eq!(
        last.hosts_stale, 0,
        "all hosts recover after the partition heals"
    );
    assert_eq!(last.hosts_unknown, 0, "every host reported at least once");
    assert!(last.estimate_w > 0.0 && last.truth_w > 0.0);

    let stats = fleet.stats();
    assert!(stats.stale_transitions > 0, "staleness was entered");
    assert!(
        stats.recoveries >= stats.stale_transitions.saturating_sub(fleet.hosts() as u64),
        "staleness was left again (allowing still-stale hosts at the end)"
    );

    // Band widening: stale ticks carry a wider aggregate band than the
    // steady state before the partition.
    let pre = &reports[(PART_START - 2) as usize];
    let widest = reports
        .iter()
        .skip(PART_START as usize)
        .take((PART_END - PART_START + 2) as usize)
        .map(|r| r.band_w)
        .fold(0.0_f64, f64::max);
    assert!(
        widest > pre.band_w,
        "stale hold-over widens the band ({widest:.2} W vs {:.2} W)",
        pre.band_w
    );
}

/// The transport journals its lifecycle (retry, timeout→stale,
/// partition edges) and exports its counters to the Prometheus dump.
#[test]
fn fleet_observability_surfaces_transport_events() {
    let (mut fleet, telemetry) = faulty_fleet();
    fleet.run(TICKS);

    let journal = telemetry.journal();
    assert!(
        journal.count(EventKind::FleetRetry) > 0,
        "retries journaled"
    );
    assert!(
        journal.count(EventKind::FleetPartition) > 0,
        "partition edges journaled"
    );
    assert!(
        journal.count(EventKind::FleetTimeout) > 0,
        "delivery timeouts journaled"
    );

    let prom = telemetry.render_prometheus();
    for metric in [
        "powerapi_fleet_frames_produced_total",
        "powerapi_fleet_retransmits_total",
        "powerapi_fleet_dropped_total{cause=\"link-fault\"}",
        "powerapi_fleet_shard_shed_total{shard=\"0\"}",
    ] {
        assert!(prom.contains(metric), "prometheus dump exports {metric}");
    }
}

/// The same seed replays the same fleet: every counter is bit-identical
/// across two runs (the property the golden harness relies on).
#[test]
fn fleet_replay_is_deterministic() {
    let (mut a, _ta) = faulty_fleet();
    let (mut b, _tb) = faulty_fleet();
    let ra = a.run(TICKS);
    let rb = b.run(TICKS);
    assert_eq!(a.stats(), b.stats(), "counters replay bit-identically");
    assert_eq!(a.lag_samples(), b.lag_samples());
    for (x, y) in ra.iter().zip(&rb) {
        assert_eq!(x.estimate_w.to_bits(), y.estimate_w.to_bits());
        assert_eq!(x.hosts_stale, y.hosts_stale);
    }
}

/// Per-tenant attribution across the sharded fleet, under the same
/// partition: a stale host's *held* frames keep the per-tenant ledger
/// closed (tenants + `__ungrouped__` equal the summed host actives
/// exactly), and the staleness is visible as `Quality::Stale` with a
/// widened band — never silently served as fresh.
#[test]
fn stale_hosts_keep_per_tenant_sums_conserved() {
    use powerapi_suite::powerapi::fleet::{shard, HostId};
    use powerapi_suite::powerapi::hierarchy::UNGROUPED;
    use powerapi_suite::powerapi::msg::Quality;

    const IDLE_W: f64 = 30.0;
    let fault = LinkFaultPlan::from_parts(
        0xF1EE_7E57,
        &LinkFaultConfig::default(),
        vec![LinkWindow {
            kind: LinkFaultKind::Partition,
            start: PART_START,
            end: PART_END,
            host_lo: 0,
            host_hi: 2,
        }],
    );
    let cfg = FleetConfig {
        shards: 2,
        events: PAPER_EVENTS.to_vec(),
        fault,
        ..FleetConfig::default()
    };
    let sources = (0..HOSTS).map(|i| grouped_source(i) as _).collect();
    let mut fleet = Fleet::new(
        cfg,
        &CpuLoadFormula::new(IDLE_W, 25.0),
        sources,
        Telemetry::new(),
    );

    // The per-tenant ledger must close at EVERY tick — partitioned hosts
    // serve their held (stale) books, but held books still sum exactly.
    let closure = |fleet: &Fleet| -> (f64, f64) {
        let tenants: f64 = ["tenant-gold", "tenant-bronze", UNGROUPED]
            .iter()
            .filter_map(|p| fleet.tenant_estimate(p))
            .map(|e| e.power_w)
            .sum();
        let hosts: f64 = (0..HOSTS)
            .map(|h| {
                let host = HostId(h as u32);
                let s = shard::route(host, 2);
                fleet
                    .shard(s)
                    .track(host)
                    .map_or(0.0, |t| t.power_w - IDLE_W)
            })
            .sum();
        (tenants, hosts)
    };

    let mut pre_partition_band = 0.0;
    let mut saw_stale_tenant = false;
    let mut stale_band = 0.0_f64;
    for tick in 0..TICKS {
        fleet.tick();
        let (tenants, hosts) = closure(&fleet);
        assert!(
            (tenants - hosts).abs() < 1e-9,
            "tick {tick}: per-tenant ledger leaks ({tenants} W vs {hosts} W)"
        );
        let gold = fleet.tenant_estimate("tenant-gold");
        if tick == PART_START - 2 {
            let gold = gold.as_ref().expect("gold tenant visible pre-partition");
            assert_eq!(gold.quality, Quality::Full, "fresh before the partition");
            pre_partition_band = gold.band_w;
        }
        if let Some(g) = &gold {
            if g.quality == Quality::Stale {
                saw_stale_tenant = true;
                stale_band = stale_band.max(g.band_w);
            }
        }
    }
    assert!(
        saw_stale_tenant,
        "the partition must surface as a Stale per-tenant quality"
    );
    assert!(
        stale_band > pre_partition_band,
        "stale tenants widen the band ({stale_band:.2} W vs {pre_partition_band:.2} W)"
    );

    // After the partition heals: every tenant is Full again, visible on
    // all the hosts that run it.
    let gold = fleet.tenant_estimate("tenant-gold").expect("gold tenant");
    assert_eq!(gold.quality, Quality::Full, "staleness recovers");
    assert_eq!(gold.hosts, HOSTS, "gold runs on every host");
    let bronze = fleet
        .tenant_estimate("tenant-bronze")
        .expect("bronze tenant");
    assert_eq!(bronze.hosts, HOSTS / 2, "bronze runs on the even hosts");
    assert!(
        fleet.tenant_estimate("tenant-none").is_none(),
        "unknown tenants stay absent, not zero"
    );
    fleet.assert_conserved();
}

/// Source audit: fleet code must never stamp `TraceId::NONE` — every
/// journal call and envelope carries a propagated origin trace (or the
/// deterministic per-frame fallback). Only `#[cfg(test)]` helpers may
/// build untraced envelopes.
#[test]
fn fleet_sources_never_stamp_trace_none() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/core/src/fleet");
    let mut scanned = 0;
    for entry in std::fs::read_dir(&dir).expect("fleet source dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        scanned += 1;
        let text = std::fs::read_to_string(&path).expect("fleet source file");
        // Test helpers legitimately build untraced envelopes; production
        // code stops at the first `#[cfg(test)]`.
        let production = text.split("#[cfg(test)]").next().unwrap_or("");
        for (i, line) in production.lines().enumerate() {
            assert!(
                !line.contains("TraceId::NONE"),
                "{}:{}: fleet production code stamps TraceId::NONE — \
                 propagate the frame's origin trace instead",
                path.display(),
                i + 1
            );
        }
    }
    assert!(scanned >= 6, "expected the fleet modules, found {scanned}");
}

/// Cross-host trace propagation, observed end-to-end at runtime: every
/// fleet journal event and every journey hop carries a real trace id,
/// and each frame's hop chain starts at `produce` and shares one origin
/// trace across retransmits and duplicates.
#[test]
fn fleet_journal_and_journeys_carry_real_traces() {
    use powerapi_suite::powerapi::fleet::HopStage;
    use std::collections::BTreeMap;

    let (mut fleet, telemetry) = faulty_fleet();
    fleet.run(TICKS);

    for event in telemetry.journal().events() {
        if event.kind.label().starts_with("fleet-") || event.kind.label().starts_with("slo-") {
            assert!(
                event.trace.is_traced(),
                "journal event {} ({}) lost its trace",
                event.kind.label(),
                event.subject
            );
        }
    }

    let mut journeys: BTreeMap<(u32, u64), Vec<_>> = BTreeMap::new();
    for hop in fleet.journeys().hops() {
        assert!(hop.trace.is_traced(), "journey hop without an origin trace");
        journeys.entry((hop.host.0, hop.seq)).or_default().push(hop);
    }
    assert!(!journeys.is_empty(), "faulty run records journeys");
    for ((host, seq), hops) in &journeys {
        assert_eq!(
            hops[0].stage,
            HopStage::Produce,
            "host {host} seq {seq}: journeys start at produce"
        );
        assert!(
            hops.iter().all(|h| h.trace == hops[0].trace),
            "host {host} seq {seq}: retransmits/duplicates must share the origin trace"
        );
    }
    // The faulty plan provokes retransmissions, so at least one journey
    // must contain a second transmission attempt — the chain the
    // Chrome-trace track renders.
    assert!(
        journeys
            .values()
            .any(|hops| hops.iter().any(|h| h.attempt > 0)),
        "some journey records a retransmission attempt"
    );
}

/// `Fleet::explain` names the host frames behind a tenant estimate and
/// its JSON round-trips exactly (bit-identical floats, stable key
/// order) — the provenance contract the E14 bench leans on.
#[test]
fn explain_provenance_round_trips_exactly() {
    use powerapi_suite::powerapi::fleet::ProvenanceReport;

    // Provenance needs tenant books, so this fleet streams grouped
    // frames — same fault schedule as the shared faulty fleet.
    let fault = LinkFaultPlan::from_parts(
        0xF1EE_7E57,
        &LinkFaultConfig {
            drop_rate: 0.10,
            duplicate_rate: 0.05,
            corrupt_rate: 0.03,
            reorder_rate: 0.05,
            ..LinkFaultConfig::default()
        },
        vec![LinkWindow {
            kind: LinkFaultKind::Partition,
            start: PART_START,
            end: PART_END,
            host_lo: 0,
            host_hi: 2,
        }],
    );
    let cfg = FleetConfig {
        shards: 2,
        events: PAPER_EVENTS.to_vec(),
        fault,
        ..FleetConfig::default()
    };
    let sources = (0..HOSTS).map(|i| grouped_source(i) as _).collect();
    let mut fleet = Fleet::new(
        cfg,
        &CpuLoadFormula::new(30.0, 25.0),
        sources,
        Telemetry::new(),
    );
    fleet.run(TICKS);
    let report = fleet
        .explain("tenant-gold", fleet.now())
        .expect("gold tenant is attributable");
    assert_eq!(report.hosts.len(), HOSTS, "every host contributes");
    for h in &report.hosts {
        assert!(h.trace != 0, "provenance names the origin trace");
        assert!(
            matches!(h.quality.as_str(), "full" | "degraded" | "stale"),
            "quality label is one of the three tiers"
        );
        assert_eq!(
            h.staleness_ticks,
            report.tick - h.applied_tick,
            "staleness is derived from the applied tick"
        );
    }

    let json = report.to_json();
    let round = ProvenanceReport::from_json(&json).expect("provenance JSON parses");
    assert_eq!(report, round, "parse(serialize(r)) == r, exactly");
    assert_eq!(round.to_json(), json, "serialization is a fixed point");
}
