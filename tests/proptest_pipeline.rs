//! Cross-crate property tests: invariants of the full monitoring pipeline
//! under arbitrary workloads and configurations.

use powerapi_suite::os_sim::kernel::Kernel;
use powerapi_suite::os_sim::task::SteadyTask;
use powerapi_suite::powerapi::formula::cpuload::CpuLoadFormula;
use powerapi_suite::powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi_suite::powerapi::model::power_model::PerFrequencyPowerModel;
use powerapi_suite::powerapi::msg::Scope;
use powerapi_suite::powerapi::runtime::PowerApi;
use powerapi_suite::simcpu::fault::{FaultPlan, FaultPlanConfig};
use powerapi_suite::simcpu::presets;
use powerapi_suite::simcpu::units::{MegaHertz, Nanos};
use powerapi_suite::simcpu::workunit::WorkUnit;
use proptest::prelude::*;

fn work_unit() -> impl Strategy<Value = WorkUnit> {
    (
        0.0f64..0.5,
        0.0f64..0.3,
        0.0f64..0.2,
        0.0f64..0.1,
        1.0f64..262_144.0,
        0.0f64..1.0,
        0.8f64..3.0,
        0.05f64..1.0,
    )
        .prop_map(|(m, b, f, bm, fp, loc, ipc, int)| {
            WorkUnit::builder()
                .mem_ratio(m)
                .branch_ratio(b)
                .fp_ratio(f)
                .branch_miss_rate(bm)
                .footprint_kb(fp)
                .locality(loc)
                .base_ipc(ipc)
                .intensity(int)
                .build()
                .expect("valid ranges")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn machine_estimate_is_idle_plus_process_sum(
        works in prop::collection::vec(work_unit(), 1..4),
    ) {
        let model = PerFrequencyPowerModel::paper_i3_example();
        let idle = model.idle_w();
        let mut kernel = Kernel::new(presets::intel_i3_2120());
        let pids: Vec<_> = works
            .iter()
            .enumerate()
            .map(|(i, w)| kernel.spawn(format!("p{i}"), vec![SteadyTask::boxed(*w)]))
            .collect();
        let mut papi = PowerApi::builder(kernel)
            .formula(PerFrequencyFormula::new(model))
            .report_to_memory()
            .quantum(Nanos::from_millis(5))
            .clock_period(Nanos::from_millis(500))
            .build()
            .expect("pipeline builds");
        for &pid in &pids {
            papi.monitor(pid).expect("monitor");
        }
        papi.run_for(Nanos::from_secs(2)).expect("run");
        let outcome = papi.finish().expect("shutdown");

        // For every timestamped machine aggregate: machine = idle + Σ
        // process estimates at that timestamp.
        for (ts, machine_w) in outcome.machine_estimates() {
            let process_sum: f64 = outcome
                .reports
                .iter()
                .filter(|r| r.timestamp == ts && matches!(r.scope, Scope::Process(_)))
                .map(|r| r.power.as_f64())
                .sum();
            prop_assert!(
                (machine_w.as_f64() - idle - process_sum).abs() < 1e-6,
                "machine {} != idle {idle} + Σ {process_sum}",
                machine_w.as_f64()
            );
        }
        // Estimates are non-negative and finite.
        for r in &outcome.reports {
            prop_assert!(r.power.as_f64().is_finite());
            prop_assert!(r.power.as_f64() >= 0.0);
        }
    }

    #[test]
    fn estimates_arrive_once_per_clock_period(
        w in work_unit(),
        periods in 2u64..6,
    ) {
        let mut kernel = Kernel::new(presets::intel_i3_2120());
        let pid = kernel.spawn("p", vec![SteadyTask::boxed(w)]);
        let clock = Nanos::from_millis(250);
        let mut papi = PowerApi::builder(kernel)
            .formula(PerFrequencyFormula::new(
                PerFrequencyPowerModel::paper_i3_example(),
            ))
            .report_to_memory()
            .quantum(Nanos::from_millis(5))
            .clock_period(clock)
            .build()
            .expect("pipeline builds");
        papi.monitor(pid).expect("monitor");
        papi.run_for(Nanos(250_000_000 * periods)).expect("run");
        let outcome = papi.finish().expect("shutdown");
        let est = outcome.machine_estimates();
        prop_assert_eq!(est.len() as u64, periods, "one estimate per tick");
        // Timestamps are exactly the clock boundaries.
        for (i, (ts, _)) in est.iter().enumerate() {
            prop_assert_eq!(ts.as_u64(), (i as u64 + 1) * 250_000_000);
        }
    }

    #[test]
    fn paper_model_estimate_bounded_by_physics(
        w in work_unit(),
        freq_idx in 0usize..10,
    ) {
        // Whatever the workload, an estimate from sane coefficients must
        // stay within physical bounds for this machine class.
        let freqs = [
            1600u32, 1800, 2000, 2200, 2400, 2600, 2800, 3000, 3200, 3300,
        ];
        let mut kernel = Kernel::new(presets::intel_i3_2120());
        kernel
            .pin_frequency(MegaHertz(freqs[freq_idx]))
            .expect("nominal frequency");
        let pid = kernel.spawn("p", vec![SteadyTask::boxed(w)]);
        let mut papi = PowerApi::builder(kernel)
            .formula(PerFrequencyFormula::new(
                PerFrequencyPowerModel::paper_i3_example(),
            ))
            .report_to_memory()
            .quantum(Nanos::from_millis(5))
            .clock_period(Nanos::from_millis(500))
            .build()
            .expect("pipeline builds");
        papi.monitor(pid).expect("monitor");
        papi.run_for(Nanos::from_secs(1)).expect("run");
        let outcome = papi.finish().expect("shutdown");
        for (_, machine_w) in outcome.machine_estimates() {
            let p = machine_w.as_f64();
            prop_assert!(p >= 31.48 - 1e-9, "never below the idle constant: {p}");
            prop_assert!(p < 120.0, "never beyond physical headroom: {p}");
        }
    }
}

proptest! {
    // Each case runs a full pipeline with fault injection; keep the case
    // count modest so the suite stays interactive.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The conservation invariant survives chaos, in its streaming form.
    ///
    /// Under fault injection the degraded (procfs-sourced) estimates can
    /// arrive at the aggregator out of timestamp order relative to the
    /// primary (HPC-sourced) stream — the two sensors are independent
    /// actors, so their streams skew when ticks outpace the pipeline.
    /// The aggregator then splits a tick across several machine
    /// aggregates, each folding a disjoint subset of that tick's process
    /// estimates and re-stating the idle floor once. What must *never*
    /// break is conservation across the partition: per timestamp, the
    /// machine aggregates above idle sum to exactly the process
    /// estimates, no power lost or double-counted, and the worst machine
    /// quality equals the worst process quality folded anywhere in the
    /// tick.
    #[test]
    fn conservation_holds_under_fault_injection(
        works in prop::collection::vec(work_unit(), 1..4),
        fault_seed in 0u64..1024,
        windows_per_kind in 1usize..3,
    ) {
        let duration = Nanos::from_secs(3);
        let plan = FaultPlan::generate(
            fault_seed,
            duration,
            &FaultPlanConfig {
                windows_per_kind,
                min_window: Nanos::from_millis(300),
                max_window: Nanos::from_millis(1500),
                ..FaultPlanConfig::default()
            },
        );
        let model = PerFrequencyPowerModel::paper_i3_example();
        let idle = model.idle_w();
        let mut kernel = Kernel::new(presets::intel_i3_2120());
        let pids: Vec<_> = works
            .iter()
            .enumerate()
            .map(|(i, w)| kernel.spawn(format!("p{i}"), vec![SteadyTask::boxed(*w)]))
            .collect();
        let mut papi = PowerApi::builder(kernel)
            .formula(PerFrequencyFormula::new(model))
            .degrade_to(CpuLoadFormula::new(0.0, 4.0), Nanos::from_millis(600))
            .fault_plan(plan)
            .report_to_memory()
            .quantum(Nanos::from_millis(5))
            .clock_period(Nanos::from_millis(250))
            .build()
            .expect("pipeline builds");
        for &pid in &pids {
            papi.monitor(pid).expect("monitor");
        }
        papi.run_for(duration).expect("run");
        let outcome = papi.finish().expect("shutdown");

        let machine_ts: std::collections::BTreeSet<_> = outcome
            .reports
            .iter()
            .filter(|r| r.scope == Scope::Machine)
            .map(|r| r.timestamp)
            .collect();
        prop_assert!(
            !machine_ts.is_empty(),
            "faults degrade estimates, they must not silence them"
        );
        for &ts in &machine_ts {
            let machines: Vec<_> = outcome
                .reports
                .iter()
                .filter(|r| r.timestamp == ts && r.scope == Scope::Machine)
                .collect();
            let procs: Vec<_> = outcome
                .reports
                .iter()
                .filter(|r| r.timestamp == ts && matches!(r.scope, Scope::Process(_)))
                .collect();
            let above_idle: f64 = machines
                .iter()
                .map(|r| r.power.as_f64() - idle)
                .sum();
            let process_sum: f64 = procs.iter().map(|r| r.power.as_f64()).sum();
            prop_assert!(
                (above_idle - process_sum).abs() < 1e-6,
                "Σ machine-above-idle {above_idle} != Σ process {process_sum} at {ts:?} \
                 ({} machine aggregates)",
                machines.len()
            );
            let machine_worst = machines.iter().map(|r| r.quality).min();
            let process_worst = procs.iter().map(|r| r.quality).min();
            prop_assert_eq!(
                machine_worst, process_worst,
                "machine quality floor matches process quality floor at {:?}", ts
            );
        }
        for r in &outcome.reports {
            prop_assert!(r.power.as_f64().is_finite());
            prop_assert!(r.power.as_f64() >= 0.0, "no negative power under faults");
        }
    }

    /// The hierarchical conservation law over random trees, shares and
    /// fault schedules: whatever leaves processes land on (including
    /// none — the `__ungrouped__` catch-all), whatever the scheduler
    /// weights, and whatever faults degrade the estimates, every ledger
    /// flush must roll up bit-exactly and the root must reconcile with
    /// the machine aggregator.
    #[test]
    fn hierarchy_conservation_holds_for_random_trees(
        assignments in prop::collection::vec((work_unit(), 0usize..5), 1..5),
        shares_a in 256u64..8192,
        shares_b in 256u64..8192,
        fault_seed in 0u64..1024,
    ) {
        use powerapi_suite::powerapi::hierarchy::Hierarchy;

        // Leaf pool: two tenants, three levels at the deepest, plus the
        // no-cgroup slot (index 4) that must fall into the catch-all.
        const LEAVES: [Option<&str>; 5] = [
            Some("tenant-a/svc-web"),
            Some("tenant-a/svc-db"),
            Some("tenant-b/svc-api"),
            Some("tenant-b/svc-api/shard-0"),
            None,
        ];
        let duration = Nanos::from_secs(3);
        let plan = FaultPlan::generate(
            fault_seed,
            duration,
            &FaultPlanConfig {
                min_window: Nanos::from_millis(300),
                max_window: Nanos::from_millis(1500),
                ..FaultPlanConfig::default()
            },
        );
        let model = PerFrequencyPowerModel::paper_i3_example();
        let mut kernel = Kernel::new(presets::intel_i3_2120());
        kernel.cgroup_create("tenant-a", shares_a);
        kernel.cgroup_create("tenant-b", shares_b);
        let pids: Vec<_> = assignments
            .iter()
            .enumerate()
            .map(|(i, (w, slot))| match LEAVES[*slot] {
                Some(path) => {
                    kernel.spawn_in_cgroup(format!("p{i}"), path, vec![SteadyTask::boxed(*w)])
                }
                None => kernel.spawn(format!("p{i}"), vec![SteadyTask::boxed(*w)]),
            })
            .collect();
        let hierarchy = Hierarchy::new(model.idle_w());
        hierarchy.sync_cgroups(kernel.cgroups());
        let mut papi = PowerApi::builder(kernel)
            .formula(PerFrequencyFormula::new(model))
            .degrade_to(CpuLoadFormula::new(0.0, 4.0), Nanos::from_millis(600))
            .fault_plan(plan)
            .report_to_memory()
            .quantum(Nanos::from_millis(5))
            .clock_period(Nanos::from_millis(250))
            .hierarchy(&hierarchy)
            .build()
            .expect("pipeline builds");
        for &pid in &pids {
            papi.monitor(pid).expect("monitor");
        }
        papi.run_for(duration).expect("run");
        let outcome = papi.finish().expect("shutdown");

        prop_assert!(hierarchy.ticks() > 0, "faults must not silence the ledger");
        let conserved = hierarchy.conservation();
        prop_assert!(conserved.is_ok(), "{}", conserved.unwrap_err());
        let reconciled = hierarchy.reconcile(&outcome.reports);
        prop_assert!(reconciled.is_ok(), "{}", reconciled.unwrap_err());
    }
}
