//! VM-level power attribution end to end (§5 future work): control
//! groups in the kernel, group aggregation in the middleware.

use powerapi_suite::os_sim::kernel::Kernel;
use powerapi_suite::os_sim::task::SteadyTask;
use powerapi_suite::powerapi::aggregator::GroupAggregator;
use powerapi_suite::powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi_suite::powerapi::model::power_model::PerFrequencyPowerModel;
use powerapi_suite::powerapi::msg::Topic;
use powerapi_suite::powerapi::runtime::PowerApi;
use powerapi_suite::simcpu::presets;
use powerapi_suite::simcpu::units::Nanos;
use powerapi_suite::simcpu::workunit::WorkUnit;

#[test]
fn group_power_equals_sum_of_member_processes() {
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let a = kernel.spawn_in_group(
        "a",
        "vm-alpha",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.9))],
    );
    let b = kernel.spawn_in_group(
        "b",
        "vm-alpha",
        vec![SteadyTask::boxed(WorkUnit::memory_intensive(65_536.0, 0.7))],
    );
    let c = kernel.spawn_in_group(
        "c",
        "vm-beta",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.4))],
    );
    let membership: Vec<_> = [("vm-alpha", a), ("vm-alpha", b), ("vm-beta", c)]
        .into_iter()
        .map(|(g, p)| (p, g.to_string()))
        .collect();

    let mut papi = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(
            PerFrequencyPowerModel::paper_i3_example(),
        ))
        .report_to_memory()
        .quantum(Nanos::from_millis(2))
        .clock_period(Nanos::from_millis(500))
        .with_actor(
            "vm-aggregator",
            Box::new(GroupAggregator::new(membership)),
            vec![Topic::Power],
        )
        .build()
        .expect("pipeline builds");
    for pid in [a, b, c] {
        papi.monitor(pid).expect("monitor");
    }
    papi.run_for(Nanos::from_secs(4)).expect("run");
    let outcome = papi.finish().expect("shutdown");

    let alpha = outcome.group_estimates("vm-alpha");
    let beta = outcome.group_estimates("vm-beta");
    assert_eq!(alpha.len(), 8, "one alpha aggregate per tick");
    assert_eq!(beta.len(), 8);

    // Group = Σ member processes at each timestamp.
    for (ts, gw) in &alpha {
        let sum: f64 = [a, b]
            .iter()
            .flat_map(|pid| outcome.process_estimates(*pid))
            .filter(|(t, _)| t == ts)
            .map(|(_, w)| w.as_f64())
            .sum();
        assert!(
            (gw.as_f64() - sum).abs() < 1e-9,
            "vm-alpha {} != Σ members {sum}",
            gw.as_f64()
        );
    }

    // Two active workers dwarf one light worker.
    let avg = |v: &[(Nanos, powerapi_suite::simcpu::Watts)]| {
        v.iter().map(|(_, w)| w.as_f64()).sum::<f64>() / v.len() as f64
    };
    assert!(avg(&alpha) > avg(&beta));
    assert!(outcome.group_estimates("vm-gamma").is_empty());
}

#[test]
fn pinned_groups_respect_their_cpu_budgets() {
    // Pin each VM to its own core; counters must show the separation.
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let alpha = kernel.spawn_in_group(
        "alpha",
        "vm-alpha",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(1.0))],
    );
    let beta = kernel.spawn_in_group(
        "beta",
        "vm-beta",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(1.0))],
    );
    kernel.pin_process(alpha, vec![0, 1]).expect("pin alpha");
    kernel.pin_process(beta, vec![2, 3]).expect("pin beta");
    for _ in 0..100 {
        let r = kernel.tick(Nanos::from_millis(1));
        for rec in &r.records {
            let cpu = rec.cpu.as_usize();
            if rec.pid == alpha {
                assert!(cpu < 2, "alpha escaped to cpu{cpu}");
            } else {
                assert!(cpu >= 2, "beta escaped to cpu{cpu}");
            }
        }
    }
}

/// The legacy flat group path is bit-identical alongside the hierarchy:
/// both aggregators fold the same per-actor FIFO power stream, so a
/// hierarchy leaf must reproduce the flat `GroupAggregator`'s numbers
/// bit-for-bit — the hierarchical upgrade cannot perturb the old path.
#[test]
fn hierarchy_leaves_match_flat_groups_bit_for_bit() {
    use powerapi_suite::powerapi::formula::PowerFormula;
    use powerapi_suite::powerapi::hierarchy::Hierarchy;

    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let a = kernel.spawn_in_group(
        "a",
        "vm-alpha",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.9))],
    );
    let b = kernel.spawn_in_group(
        "b",
        "vm-alpha",
        vec![SteadyTask::boxed(WorkUnit::memory_intensive(65_536.0, 0.7))],
    );
    let c = kernel.spawn_in_group(
        "c",
        "vm-beta",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.4))],
    );
    let membership: Vec<_> = [("vm-alpha", a), ("vm-alpha", b), ("vm-beta", c)]
        .into_iter()
        .map(|(g, p)| (p, g.to_string()))
        .collect();

    let formula = PerFrequencyFormula::new(PerFrequencyPowerModel::paper_i3_example());
    // Same pids, hierarchical paths (distinct names so the two
    // aggregators' report streams stay distinguishable).
    let hierarchy = Hierarchy::new(formula.idle_w());
    hierarchy.attach(a, "tenant/vm-alpha");
    hierarchy.attach(b, "tenant/vm-alpha");
    hierarchy.attach(c, "tenant/vm-beta");

    let mut papi = PowerApi::builder(kernel)
        .formula(formula)
        .report_to_memory()
        .quantum(Nanos::from_millis(2))
        .clock_period(Nanos::from_millis(500))
        .with_actor(
            "vm-aggregator",
            Box::new(GroupAggregator::new(membership)),
            vec![Topic::Power],
        )
        .hierarchy(&hierarchy)
        .build()
        .expect("pipeline builds");
    for pid in [a, b, c] {
        papi.monitor(pid).expect("monitor");
    }
    papi.run_for(Nanos::from_secs(4)).expect("run");
    let outcome = papi.finish().expect("shutdown");

    hierarchy.assert_conserved(&outcome.reports);
    for (flat, leaf) in [
        ("vm-alpha", "tenant/vm-alpha"),
        ("vm-beta", "tenant/vm-beta"),
    ] {
        let flat_est = outcome.group_estimates(flat);
        let leaf_est = outcome.group_estimates(leaf);
        assert_eq!(flat_est.len(), 8, "one flat aggregate per tick");
        assert_eq!(flat_est.len(), leaf_est.len());
        for ((fts, fw), (lts, lw)) in flat_est.iter().zip(&leaf_est) {
            assert_eq!(fts, lts, "same window boundaries");
            assert_eq!(
                fw.as_f64().to_bits(),
                lw.as_f64().to_bits(),
                "{flat} at {fts:?}: flat {} W vs hierarchy leaf {} W",
                fw.as_f64(),
                lw.as_f64()
            );
        }
    }
}
