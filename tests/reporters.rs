//! Reporter integration: every output format wired through the full
//! runtime produces coherent, parseable output for the same run, and the
//! text formats round-trip — parsing a line recovers the exact report
//! (power and prediction band at the printed precision, quality tag,
//! trace id) that went in.

use powerapi_suite::os_sim::kernel::Kernel;
use powerapi_suite::os_sim::process::Pid;
use powerapi_suite::os_sim::task::SteadyTask;
use powerapi_suite::powerapi::actor::ActorSystem;
use powerapi_suite::powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi_suite::powerapi::model::power_model::PerFrequencyPowerModel;
use powerapi_suite::powerapi::msg::{AggregateReport, Message, Quality, Scope, Topic};
use powerapi_suite::powerapi::reporter::{CsvReporter, InfluxReporter, JsonReporter};
use powerapi_suite::powerapi::runtime::PowerApi;
use powerapi_suite::powerapi::telemetry::TraceId;
use powerapi_suite::simcpu::presets;
use powerapi_suite::simcpu::units::{Nanos, Watts};
use powerapi_suite::simcpu::workunit::WorkUnit;
use std::io::Write;
use std::sync::Arc;

/// A `Write` target whose contents outlive the reporter actor.
#[derive(Clone, Default)]
struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("unpoisoned").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().expect("unpoisoned").clone()).expect("utf8 output")
    }
}

#[test]
fn csv_json_and_influx_agree_on_the_same_run() {
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let pid = kernel.spawn("app", vec![SteadyTask::boxed(WorkUnit::cpu_intensive(1.0))]);
    let csv = SharedBuf::default();
    let json = SharedBuf::default();
    let influx = SharedBuf::default();
    let mut papi = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(
            PerFrequencyPowerModel::paper_i3_example(),
        ))
        .report_to_memory()
        .report_to_csv(csv.clone())
        .report_to_json(json.clone())
        .report_to_influx(influx.clone())
        .quantum(Nanos::from_millis(2))
        .clock_period(Nanos::from_millis(500))
        .build()
        .expect("pipeline builds");
    papi.monitor(pid).expect("monitor");
    papi.run_for(Nanos::from_secs(3)).expect("run");
    let outcome = papi.finish().expect("shutdown");

    // Ground truth for the comparison: the memory reporter.
    let estimates = outcome.machine_estimates();
    assert_eq!(estimates.len(), 6);

    // CSV: header + one row per message; machine rows match memory.
    let csv_text = csv.text();
    let mut lines = csv_text.lines();
    assert_eq!(
        lines.next(),
        Some("time_s,kind,scope,power_w,band_w,quality,trace")
    );
    let machine_rows: Vec<&str> = csv_text
        .lines()
        .filter(|l| l.contains(",estimate,machine,"))
        .collect();
    assert_eq!(machine_rows.len(), estimates.len());
    for (row, (ts, w)) in machine_rows.iter().zip(&estimates) {
        let cols: Vec<&str> = row.split(',').collect();
        assert_eq!(cols.len(), 7);
        assert!((cols[0].parse::<f64>().expect("time") - ts.as_secs_f64()).abs() < 1e-9);
        assert!((cols[3].parse::<f64>().expect("power") - w.as_f64()).abs() < 0.001);
        assert!(cols[4].parse::<f64>().expect("band") >= 0.0);
        assert_eq!(cols[5], "full", "clean run, full quality");
        assert!(cols[6].parse::<u64>().expect("trace id") > 0, "traced tick");
    }

    // JSON lines: same count of machine estimates, balanced braces/quotes.
    let json_text = json.text();
    let machine_objs: Vec<&str> = json_text
        .lines()
        .filter(|l| l.contains("\"scope\":\"machine\"") && l.contains("\"kind\":\"estimate\""))
        .collect();
    assert_eq!(machine_objs.len(), estimates.len());
    for l in json_text.lines() {
        assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
        assert_eq!(l.matches('"').count() % 2, 0, "{l}");
        assert!(l.contains("\"band_w\":"), "{l}");
        assert!(l.contains("\"quality\":\""), "{l}");
        assert!(l.contains("\"trace\":"), "{l}");
    }

    // Influx line protocol: measurement,tags fields timestamp.
    let influx_text = influx.text();
    let machine_points: Vec<&str> = influx_text
        .lines()
        .filter(|l| l.starts_with("power,scope=machine,kind=estimate,"))
        .collect();
    assert_eq!(machine_points.len(), estimates.len());
    for (point, (ts, w)) in machine_points.iter().zip(&estimates) {
        let parts: Vec<&str> = point.split(' ').collect();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[2].parse::<u64>().expect("ns ts"), ts.as_u64());
        let field = parts[1].strip_prefix("power_w=").expect("field");
        let watts = field.split(',').next().expect("first field");
        assert!((watts.parse::<f64>().expect("watts") - w.as_f64()).abs() < 0.001);
        assert!(parts[1].contains(",band_w="), "{point}");
        assert!(parts[1].contains(",trace="), "{point}");
    }

    // Every format also carried the meter stream.
    assert!(csv_text.contains(",powerspy,machine,"));
    assert!(json_text.contains("\"kind\":\"powerspy\""));
    assert!(influx_text.contains("kind=powerspy"));
}

/// What a parsed reporter line must recover.
#[derive(Debug, Clone, PartialEq)]
struct Row {
    time_s: f64,
    kind: String,
    scope: String,
    power_w: f64,
    band_w: f64,
    quality: String,
    trace: u64,
}

/// The fixture: three aggregates covering every scope and quality plus
/// both measurement streams. All values are exact at 3 decimals so the
/// round trip can compare with `==`, not a tolerance.
fn fixture() -> (Vec<Message>, Vec<Row>) {
    let msgs = vec![
        Message::Aggregate(AggregateReport {
            timestamp: Nanos::from_millis(1500),
            scope: Scope::Process(Pid(7)),
            power: Watts(2.25),
            band_w: Watts(0.75),
            quality: Quality::Degraded,
            trace: TraceId(42),
        }),
        Message::Aggregate(AggregateReport {
            timestamp: Nanos::from_secs(2),
            scope: Scope::Machine,
            power: Watts(33.5),
            band_w: Watts(1.5),
            quality: Quality::Full,
            trace: TraceId(43),
        }),
        Message::Aggregate(AggregateReport {
            timestamp: Nanos::from_secs(2),
            scope: Scope::Group(Arc::from("browsers")),
            power: Watts(10.125),
            band_w: Watts(0.0),
            quality: Quality::Stale,
            trace: TraceId(44),
        }),
        Message::Meter(Nanos::from_secs(2), Watts(35.75)),
        Message::Rapl(Nanos::from_secs(2), Watts(9.5)),
    ];
    let rows = vec![
        row(1.5, "estimate", "pid7", 2.25, 0.75, "degraded", 42),
        row(2.0, "estimate", "machine", 33.5, 1.5, "full", 43),
        row(2.0, "estimate", "browsers", 10.125, 0.0, "stale", 44),
        row(2.0, "powerspy", "machine", 35.75, 0.0, "full", 0),
        row(2.0, "rapl", "package", 9.5, 0.0, "full", 0),
    ];
    (msgs, rows)
}

fn row(
    time_s: f64,
    kind: &str,
    scope: &str,
    power_w: f64,
    band_w: f64,
    quality: &str,
    trace: u64,
) -> Row {
    Row {
        time_s,
        kind: kind.into(),
        scope: scope.into(),
        power_w,
        band_w,
        quality: quality.into(),
        trace,
    }
}

/// Runs the fixture through one reporter actor and returns its output.
fn run_reporter(actor: Box<dyn powerapi_suite::powerapi::actor::Actor>, buf: &SharedBuf) -> String {
    let (msgs, _) = fixture();
    let mut sys = ActorSystem::new();
    let r = sys.spawn("reporter", actor);
    for topic in [Topic::Aggregate, Topic::Meter, Topic::Rapl] {
        sys.bus().subscribe(topic, &r);
    }
    for m in msgs {
        sys.bus().publish(m);
    }
    sys.shutdown();
    buf.text()
}

#[test]
fn csv_rows_round_trip_exactly() {
    let buf = SharedBuf::default();
    let text = run_reporter(Box::new(CsvReporter::new(buf.clone())), &buf);
    let mut lines = text.lines();
    assert_eq!(
        lines.next(),
        Some("time_s,kind,scope,power_w,band_w,quality,trace")
    );
    let parsed: Vec<Row> = lines
        .map(|l| {
            let c: Vec<&str> = l.split(',').collect();
            assert_eq!(c.len(), 7, "{l}");
            row(
                c[0].parse().expect("time"),
                c[1],
                c[2],
                c[3].parse().expect("power"),
                c[4].parse().expect("band"),
                c[5],
                c[6].parse().expect("trace"),
            )
        })
        .collect();
    assert_eq!(parsed, fixture().1);
}

#[test]
fn json_lines_round_trip_exactly() {
    let buf = SharedBuf::default();
    let text = run_reporter(Box::new(JsonReporter::new(buf.clone())), &buf);
    // The schema is flat with a fixed key order, so a field-splitting
    // parser is an honest JSON reader for these lines.
    let parsed: Vec<Row> = text
        .lines()
        .map(|l| {
            let body = l
                .strip_prefix('{')
                .and_then(|l| l.strip_suffix('}'))
                .unwrap_or_else(|| panic!("not an object: {l}"));
            let mut fields = std::collections::BTreeMap::new();
            for kv in body.split(',') {
                let (k, v) = kv.split_once(':').expect("key:value");
                fields.insert(k.trim_matches('"'), v.trim_matches('"'));
            }
            row(
                fields["time_s"].parse().expect("time"),
                fields["kind"],
                fields["scope"],
                fields["power_w"].parse().expect("power"),
                fields["band_w"].parse().expect("band"),
                fields["quality"],
                fields["trace"].parse().expect("trace"),
            )
        })
        .collect();
    assert_eq!(parsed, fixture().1);
}

#[test]
fn influx_points_round_trip_exactly() {
    let buf = SharedBuf::default();
    let text = run_reporter(Box::new(InfluxReporter::new(buf.clone())), &buf);
    let parsed: Vec<Row> = text
        .lines()
        .map(|l| {
            let parts: Vec<&str> = l.split(' ').collect();
            assert_eq!(parts.len(), 3, "{l}");
            let mut tags = std::collections::BTreeMap::new();
            for tag in parts[0].split(',').skip(1) {
                let (k, v) = tag.split_once('=').expect("tag");
                tags.insert(k, v);
            }
            let mut fields = std::collections::BTreeMap::new();
            for field in parts[1].split(',') {
                let (k, v) = field.split_once('=').expect("field");
                fields.insert(k, v);
            }
            let ns: u64 = parts[2].parse().expect("timestamp");
            row(
                ns as f64 / 1e9,
                tags["kind"],
                tags["scope"],
                fields["power_w"].parse().expect("power"),
                fields["band_w"].parse().expect("band"),
                tags["quality"],
                fields["trace"]
                    .strip_suffix('i')
                    .expect("integer field")
                    .parse()
                    .expect("trace"),
            )
        })
        .collect();
    assert_eq!(parsed, fixture().1);
}
