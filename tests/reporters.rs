//! Reporter integration: every output format wired through the full
//! runtime produces coherent, parseable output for the same run.

use powerapi_suite::os_sim::kernel::Kernel;
use powerapi_suite::os_sim::task::SteadyTask;
use powerapi_suite::powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi_suite::powerapi::model::power_model::PerFrequencyPowerModel;
use powerapi_suite::powerapi::runtime::PowerApi;
use powerapi_suite::simcpu::presets;
use powerapi_suite::simcpu::units::Nanos;
use powerapi_suite::simcpu::workunit::WorkUnit;
use std::io::Write;
use std::sync::Arc;

/// A `Write` target whose contents outlive the reporter actor.
#[derive(Clone, Default)]
struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("unpoisoned").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().expect("unpoisoned").clone()).expect("utf8 output")
    }
}

#[test]
fn csv_json_and_influx_agree_on_the_same_run() {
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let pid = kernel.spawn("app", vec![SteadyTask::boxed(WorkUnit::cpu_intensive(1.0))]);
    let csv = SharedBuf::default();
    let json = SharedBuf::default();
    let influx = SharedBuf::default();
    let mut papi = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(
            PerFrequencyPowerModel::paper_i3_example(),
        ))
        .report_to_memory()
        .report_to_csv(csv.clone())
        .report_to_json(json.clone())
        .report_to_influx(influx.clone())
        .quantum(Nanos::from_millis(2))
        .clock_period(Nanos::from_millis(500))
        .build()
        .expect("pipeline builds");
    papi.monitor(pid).expect("monitor");
    papi.run_for(Nanos::from_secs(3)).expect("run");
    let outcome = papi.finish().expect("shutdown");

    // Ground truth for the comparison: the memory reporter.
    let estimates = outcome.machine_estimates();
    assert_eq!(estimates.len(), 6);

    // CSV: header + one row per message; machine rows match memory.
    let csv_text = csv.text();
    let mut lines = csv_text.lines();
    assert_eq!(lines.next(), Some("time_s,kind,scope,power_w"));
    let machine_rows: Vec<&str> = csv_text
        .lines()
        .filter(|l| l.contains(",estimate,machine,"))
        .collect();
    assert_eq!(machine_rows.len(), estimates.len());
    for (row, (ts, w)) in machine_rows.iter().zip(&estimates) {
        let cols: Vec<&str> = row.split(',').collect();
        assert_eq!(cols.len(), 4);
        assert!((cols[0].parse::<f64>().expect("time") - ts.as_secs_f64()).abs() < 1e-9);
        assert!((cols[3].parse::<f64>().expect("power") - w.as_f64()).abs() < 0.001);
    }

    // JSON lines: same count of machine estimates, balanced braces/quotes.
    let json_text = json.text();
    let machine_objs: Vec<&str> = json_text
        .lines()
        .filter(|l| l.contains("\"scope\":\"machine\"") && l.contains("\"kind\":\"estimate\""))
        .collect();
    assert_eq!(machine_objs.len(), estimates.len());
    for l in json_text.lines() {
        assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
        assert_eq!(l.matches('"').count() % 2, 0, "{l}");
    }

    // Influx line protocol: measurement,tags fields timestamp.
    let influx_text = influx.text();
    let machine_points: Vec<&str> = influx_text
        .lines()
        .filter(|l| l.starts_with("power,scope=machine,kind=estimate "))
        .collect();
    assert_eq!(machine_points.len(), estimates.len());
    for (point, (ts, w)) in machine_points.iter().zip(&estimates) {
        let parts: Vec<&str> = point.split(' ').collect();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[2].parse::<u64>().expect("ns ts"), ts.as_u64());
        let field = parts[1].strip_prefix("power_w=").expect("field");
        assert!((field.parse::<f64>().expect("watts") - w.as_f64()).abs() < 0.001);
    }

    // Every format also carried the meter stream.
    assert!(csv_text.contains(",powerspy,machine,"));
    assert!(json_text.contains("\"kind\":\"powerspy\""));
    assert!(influx_text.contains("kind=powerspy"));
}
