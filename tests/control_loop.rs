//! Closed-loop integration: PowerAPI estimates steering the DVFS governor
//! (the §2 "adaptive strategies" scenario).

use powerapi_suite::os_sim::kernel::Kernel;
use powerapi_suite::os_sim::task::SteadyTask;
use powerapi_suite::powerapi::control::{CapControlActor, CappedGovernor, PowerCap};
use powerapi_suite::powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi_suite::powerapi::model::learn::{learn_model, LearnConfig};
use powerapi_suite::powerapi::msg::Topic;
use powerapi_suite::powerapi::runtime::PowerApi;
use powerapi_suite::simcpu::presets;
use powerapi_suite::simcpu::units::Nanos;
use powerapi_suite::simcpu::workunit::WorkUnit;

fn capped_run(cap_w: Option<f64>, secs: u64) -> (f64, f64) {
    let model = learn_model(presets::intel_i3_2120(), &LearnConfig::quick()).expect("learning");
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let cap = cap_w.map(PowerCap::new);
    if let Some(c) = &cap {
        kernel.set_governor(Box::new(CappedGovernor::new(c.clone())));
    }
    let pid = kernel.spawn(
        "load",
        (0..4)
            .map(|_| SteadyTask::boxed(WorkUnit::cpu_intensive(1.0)))
            .collect(),
    );
    let mut builder = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(model))
        .report_to_memory()
        .quantum(Nanos::from_millis(2))
        .clock_period(Nanos::from_millis(500));
    if let Some(c) = &cap {
        builder = builder.with_actor(
            "cap-controller",
            Box::new(CapControlActor::new(c.clone())),
            vec![Topic::Aggregate],
        );
    }
    let mut papi = builder.build().expect("pipeline builds");
    papi.monitor(pid).expect("monitor");
    papi.run_for(Nanos::from_secs(secs)).expect("run");
    let outcome = papi.finish().expect("shutdown");
    // (settled mean over the last half, peak) of measured power.
    let tail: Vec<f64> = outcome
        .meter
        .iter()
        .filter(|(at, _)| at.as_secs_f64() > secs as f64 / 2.0)
        .map(|(_, w)| w.as_f64())
        .collect();
    let mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
    let peak = outcome
        .meter
        .iter()
        .map(|(_, w)| w.as_f64())
        .fold(0.0, f64::max);
    (mean, peak)
}

#[test]
fn cap_reduces_settled_power_below_uncapped() {
    let (uncapped_mean, _) = capped_run(None, 20);
    let (capped_mean, _) = capped_run(Some(45.0), 20);
    assert!(
        uncapped_mean > 55.0,
        "full load without a cap runs hot: {uncapped_mean:.1} W"
    );
    assert!(
        capped_mean < uncapped_mean - 5.0,
        "cap must bite: {capped_mean:.1} vs {uncapped_mean:.1} W"
    );
    // The settled point sits near the budget (the learned model's thermal
    // blind spot leaves a few watts of overshoot, as on real powercap
    // daemons driven by cold-calibrated models).
    assert!(
        capped_mean < 53.0,
        "settles near the 45 W budget: {capped_mean:.1} W"
    );
}

#[test]
fn tightening_the_cap_at_runtime_steps_power_down() {
    let model = learn_model(presets::intel_i3_2120(), &LearnConfig::quick()).expect("learning");
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let cap = PowerCap::new(60.0);
    kernel.set_governor(Box::new(CappedGovernor::new(cap.clone())));
    let pid = kernel.spawn(
        "load",
        (0..4)
            .map(|_| SteadyTask::boxed(WorkUnit::cpu_intensive(1.0)))
            .collect(),
    );
    let mut papi = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(model))
        .report_to_memory()
        .quantum(Nanos::from_millis(2))
        .clock_period(Nanos::from_millis(500))
        .with_actor(
            "cap-controller",
            Box::new(CapControlActor::new(cap.clone())),
            vec![Topic::Aggregate],
        )
        .build()
        .expect("pipeline builds");
    papi.monitor(pid).expect("monitor");
    papi.run_for(Nanos::from_secs(10)).expect("phase 1");
    cap.set_cap_w(40.0);
    papi.run_for(Nanos::from_secs(10)).expect("phase 2");
    let outcome = papi.finish().expect("shutdown");

    let mean_between = |lo: f64, hi: f64| {
        let v: Vec<f64> = outcome
            .meter
            .iter()
            .filter(|(at, _)| (lo..hi).contains(&at.as_secs_f64()))
            .map(|(_, w)| w.as_f64())
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let loose = mean_between(5.0, 10.0);
    let tight = mean_between(15.0, 20.0);
    assert!(
        tight < loose - 4.0,
        "tightened budget must reduce power: {loose:.1} -> {tight:.1} W"
    );
    assert!(cap.last_estimate_w() > 0.0, "controller saw estimates");
}
