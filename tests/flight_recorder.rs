//! Flight-recorder integration: the journal's JSONL dump round-trips
//! exactly through a real pipeline run, and the Chrome trace-event
//! export holds its contract — valid JSON whose per-track timestamps
//! never run backwards — for arbitrary span and journal contents.

use powerapi_suite::os_sim::kernel::Kernel;
use powerapi_suite::os_sim::task::SteadyTask;
use powerapi_suite::powerapi::actor::{Actor, Context, RestartPolicy};
use powerapi_suite::powerapi::fleet::{FleetHop, HopStage, HostId};
use powerapi_suite::powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi_suite::powerapi::model::power_model::PerFrequencyPowerModel;
use powerapi_suite::powerapi::msg::{Message, Topic};
use powerapi_suite::powerapi::runtime::PowerApi;
use powerapi_suite::powerapi::telemetry::export::parse_json;
use powerapi_suite::powerapi::telemetry::{
    chrome_trace_full, dump_jsonl, parse_jsonl, Counter, EventKind, Journal, Stage, TraceId,
    Tracer, FLEET_PID_BASE,
};
use powerapi_suite::simcpu::fault::{FaultKind, FaultPlan, FaultWindow};
use powerapi_suite::simcpu::presets;
use powerapi_suite::simcpu::units::Nanos;
use powerapi_suite::simcpu::workunit::WorkUnit;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Exercises a real pipeline (with an injected meter fault so the
/// journal holds more than lifecycle events) and asserts the JSONL dump
/// reproduces every event field-for-field after a parse round-trip.
#[test]
fn journal_jsonl_round_trips_exactly_through_a_real_run() {
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let pid = kernel.spawn("app", vec![SteadyTask::boxed(WorkUnit::cpu_intensive(1.0))]);
    let plan = FaultPlan::from_windows(vec![FaultWindow {
        kind: FaultKind::SampleDropout,
        start: Nanos::from_secs(1),
        end: Nanos::from_secs(3),
        magnitude: 1.0,
    }]);
    let mut papi = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(
            PerFrequencyPowerModel::paper_i3_example(),
        ))
        .fault_plan(plan)
        .report_to_memory()
        .quantum(Nanos::from_millis(2))
        .clock_period(Nanos::from_millis(500))
        .build()
        .expect("pipeline");
    papi.monitor(pid).expect("monitor");
    papi.run_for(Nanos::from_secs(4)).expect("run");
    let telemetry = papi.telemetry().clone();
    papi.finish().expect("shutdown");

    let events = telemetry.journal().events();
    assert!(
        events.iter().any(|e| e.kind == EventKind::ActorStart),
        "the supervisor journals actor starts"
    );
    assert!(
        events
            .iter()
            .any(|e| e.kind == EventKind::FaultInjected && e.subject == "SampleDropout"),
        "the runtime journals the injected meter fault"
    );
    assert!(
        events.iter().any(|e| e.kind == EventKind::ActorStop),
        "shutdown journals actor stops"
    );
    let parsed = parse_jsonl(&dump_jsonl(&events)).expect("the dump parses");
    assert_eq!(parsed, events, "JSONL round-trip must be exact");
}

/// Panic payload the escalation probe throws — the quiet panic hook
/// below keys on it so the intentional crash stays out of test output.
const ESCALATION_PAYLOAD: &str = "escalation probe: intentional";

/// A supervised actor that dies on its first monitoring tick.
struct EscalationProbe;

impl Actor for EscalationProbe {
    fn handle(&mut self, _msg: Message, _ctx: &Context) {
        panic!("{ESCALATION_PAYLOAD}");
    }
}

/// A panic under `RestartPolicy::Escalate` must trip the flight
/// recorder: the run ends escalated, the post-mortem dump fires with a
/// `panic-escalation` reason, and the dumped journal names the
/// escalation itself.
#[test]
fn escalate_policy_fires_post_mortem_dump_with_escalation_event() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let intentional = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains(ESCALATION_PAYLOAD));
        if !intentional {
            default_hook(info);
        }
    }));

    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let pid = kernel.spawn("app", vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.6))]);
    let dump_dir =
        std::env::temp_dir().join(format!("powerapi-escalate-dump-{}", std::process::id()));
    let mut papi = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(
            PerFrequencyPowerModel::paper_i3_example(),
        ))
        .supervision(RestartPolicy::Escalate)
        .with_supervised_actor("doomed", || Box::new(EscalationProbe), vec![Topic::Tick])
        .report_to_memory()
        .quantum(Nanos::from_millis(2))
        .clock_period(Nanos::from_millis(500))
        // No `post_mortem_always`: the escalation alone must arm the dump.
        .post_mortem_to(&dump_dir)
        .build()
        .expect("pipeline");
    papi.monitor(pid).expect("monitor");
    papi.run_for(Nanos::from_secs(3)).expect("run");
    let outcome = papi.finish().expect("shutdown");

    assert!(
        outcome.health.escalated,
        "the probe's panic escalates system-wide"
    );
    let report = outcome
        .flight_recorder
        .as_ref()
        .expect("escalation triggers the post-mortem dump on its own");
    assert!(
        report.reason.contains("panic-escalation"),
        "dump reason names the escalation, got {:?}",
        report.reason
    );
    let journal_text =
        std::fs::read_to_string(report.dir.join("journal.jsonl")).expect("read journal.jsonl");
    let journal = parse_jsonl(&journal_text).expect("journal.jsonl parses");
    assert!(
        journal
            .iter()
            .any(|e| e.kind == EventKind::ActorEscalate && e.subject == "doomed"),
        "the dumped journal contains the escalation event"
    );
    std::fs::remove_dir_all(&dump_dir).ok();
}

/// Characters chosen to stress the exporter: JSON escapes, control
/// characters, multi-byte and astral-plane text, and JSON syntax.
const PALETTE: [char; 16] = [
    'a', 'Z', '9', '"', '\\', '\n', '\r', '\t', '\u{1}', ' ', 'é', 'Δ', '😀', '{', '[', ':',
];

fn nasty_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PALETTE.len(), 0usize..12)
        .prop_map(|ix| ix.into_iter().map(|i| PALETTE[i]).collect())
}

/// (kind index, simulated ns, subject, detail, trace id)
fn journal_entries() -> impl Strategy<Value = Vec<(usize, u64, String, String, u64)>> {
    prop::collection::vec(
        (
            0usize..EventKind::ALL.len(),
            0u64..5_000_000_000,
            nasty_string(),
            nasty_string(),
            0u64..50,
        ),
        0usize..24,
    )
}

/// (tick second, stage index, queue ns, handle ns)
fn hop_entries() -> impl Strategy<Value = Vec<(u64, usize, u64, u64)>> {
    prop::collection::vec(
        (
            1u64..60,
            0usize..Stage::ALL.len(),
            0u64..1_000_000,
            0u64..5_000_000,
        ),
        0usize..32,
    )
}

/// Every journey stage, shard-carrying variants included.
const FLEET_STAGES: [HopStage; 12] = [
    HopStage::Produce,
    HopStage::Send,
    HopStage::DropFault,
    HopStage::DropPartition,
    HopStage::DropQueue,
    HopStage::HostDark,
    HopStage::SenderShed,
    HopStage::ShardShed { shard: 3 },
    HopStage::Apply { shard: 0 },
    HopStage::Duplicate { shard: 1 },
    HopStage::Corrupt { shard: 2 },
    HopStage::Abandon,
];

/// (fleet tick, host, seq, trace id, attempt, stage index) — arbitrary
/// multi-host journeys, causal or not; the exporter must stay valid and
/// monotone regardless.
fn fleet_hop_entries() -> impl Strategy<Value = Vec<(u64, u32, u64, u64, u32, usize)>> {
    prop::collection::vec(
        (
            0u64..60,
            0u32..8,
            0u64..40,
            1u64..1_000,
            0u32..4,
            0usize..FLEET_STAGES.len(),
        ),
        0usize..48,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the journal, tracer, and fleet journey log saw, the
    /// Chrome trace-event export must (a) parse as one valid JSON
    /// document, (b) wrap a `traceEvents` array of known phases, and
    /// (c) keep every track's (`pid`,`tid`) timestamps non-decreasing
    /// in array order — the property Perfetto's importer relies on.
    /// Multi-host fleet hops land on their own pids (`FLEET_PID_BASE`
    /// + origin host) as `cat:"fleet"` instants that carry the origin
    /// trace/seq/attempt.
    #[test]
    fn chrome_trace_is_always_valid_json_with_monotone_tracks(
        entries in journal_entries(),
        hops in hop_entries(),
        fleet in fleet_hop_entries(),
        tick_ns in 1u64..2_000_000_000,
    ) {
        let journal = Journal::new(true, 4096, Counter::default(), Counter::default());
        for (k, at, subject, detail, trace) in &entries {
            journal.emit_at(
                Nanos(*at),
                EventKind::ALL[*k],
                subject,
                detail.clone(),
                TraceId(*trace),
            );
        }
        let tracer = Tracer::new();
        for (tick_s, stage, queue, handle) in &hops {
            let id = tracer.trace_for_tick(Nanos::from_secs(*tick_s));
            let name: Arc<str> = Arc::from(format!("actor-{stage}"));
            tracer.record_hop(id, Stage::ALL[*stage], &name, *queue, *handle);
        }
        let fleet_hops: Vec<FleetHop> = fleet
            .iter()
            .map(|&(tick, host, seq, trace, attempt, stage)| FleetHop {
                tick,
                host: HostId(host),
                seq,
                trace: TraceId(trace),
                attempt,
                stage: FLEET_STAGES[stage],
            })
            .collect();

        let text = chrome_trace_full(
            &tracer.spans(),
            &journal.events(),
            &fleet_hops,
            tick_ns,
        );
        let doc = parse_json(&text).expect("export is valid JSON");
        let items = doc
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");

        let mut fleet_instants = 0usize;
        let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
        for item in items {
            let ph = item.get("ph").and_then(|p| p.as_str()).expect("phase");
            prop_assert!(
                matches!(ph, "X" | "i" | "M"),
                "unexpected phase {ph:?}"
            );
            let ts = item.get("ts").and_then(|t| t.as_f64()).expect("ts");
            prop_assert!(ts >= 0.0);
            let pid = item.get("pid").and_then(|p| p.as_u64()).expect("pid");
            if item.get("cat").and_then(|c| c.as_str()) == Some("fleet") {
                fleet_instants += 1;
                prop_assert_eq!(ph, "i", "fleet hops export as instants");
                prop_assert!(
                    pid >= FLEET_PID_BASE,
                    "fleet tracks live above the pipeline pid, got {pid}"
                );
                let args = item.get("args").expect("fleet args");
                for key in ["trace", "seq", "attempt"] {
                    prop_assert!(
                        args.get(key).and_then(|v| v.as_u64()).is_some(),
                        "fleet instant missing args.{key}"
                    );
                }
            }
            // `process_name` metadata has no tid; every other record does.
            let Some(tid) = item.get("tid").and_then(|t| t.as_u64()) else {
                continue;
            };
            let last = last_ts.entry((pid, tid)).or_insert(0.0);
            prop_assert!(
                ts >= *last,
                "track ({pid},{tid}) ran backwards: {ts} after {last}"
            );
            *last = ts;
        }
        prop_assert_eq!(
            fleet_instants,
            fleet_hops.len(),
            "every fleet hop appears exactly once"
        );
    }
}
