//! Hierarchical tenant→service→process attribution end to end: cgroup
//! trees in the kernel, the `HierarchyAggregator` in the middleware, and
//! the conservation ledger that proves no watt escapes — including under
//! container churn and degraded sensor quality.

use std::sync::{Arc, Mutex};

use powerapi_suite::os_sim::kernel::Kernel;
use powerapi_suite::os_sim::process::Pid;
use powerapi_suite::os_sim::task::SteadyTask;
use powerapi_suite::powerapi::actor::{Actor, ActorSystem, Context};
use powerapi_suite::powerapi::aggregator::GroupAggregator;
use powerapi_suite::powerapi::formula::cpuload::CpuLoadFormula;
use powerapi_suite::powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi_suite::powerapi::formula::PowerFormula;
use powerapi_suite::powerapi::hierarchy::{Hierarchy, HierarchyAggregator, ROOT, UNGROUPED};
use powerapi_suite::powerapi::model::power_model::PerFrequencyPowerModel;
use powerapi_suite::powerapi::msg::{AggregateReport, Message, PowerReport, Quality, Scope, Topic};
use powerapi_suite::powerapi::runtime::PowerApi;
use powerapi_suite::powerapi::telemetry::TraceId;
use powerapi_suite::powerapi::testing::wait_until;
use powerapi_suite::simcpu::fault::{FaultKind, FaultPlan, FaultWindow};
use powerapi_suite::simcpu::presets;
use powerapi_suite::simcpu::units::{Nanos, Watts};
use powerapi_suite::simcpu::workunit::WorkUnit;
use std::time::Duration;

fn paper_formula() -> PerFrequencyFormula {
    PerFrequencyFormula::new(PerFrequencyPowerModel::paper_i3_example())
}

/// A three-level tenant→service→process tree through the full pipeline:
/// every node gets one report per tick, parents are the bit-exact sum of
/// their children, and the root reconciles with the machine aggregator.
#[test]
fn hierarchical_pipeline_conserves_every_tick() {
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    kernel.cgroup_create("tenant-a", 4096);
    kernel.cgroup_create("tenant-b", 1024);
    let w1 = kernel.spawn_in_cgroup(
        "web",
        "tenant-a/svc-web",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.8))],
    );
    let w2 = kernel.spawn_in_cgroup(
        "db",
        "tenant-a/svc-db",
        vec![SteadyTask::boxed(WorkUnit::memory_intensive(65_536.0, 0.5))],
    );
    let w3 = kernel.spawn_in_cgroup(
        "batch",
        "tenant-b/svc-batch",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.4))],
    );
    // A stray process outside every cgroup: the `__ungrouped__`
    // catch-all must account for it.
    let stray = kernel.spawn(
        "stray",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.2))],
    );

    let formula = paper_formula();
    let hierarchy = Hierarchy::new(formula.idle_w());
    hierarchy.sync_cgroups(kernel.cgroups());
    let mut papi = PowerApi::builder(kernel)
        .formula(formula)
        .report_to_memory()
        .quantum(Nanos::from_millis(2))
        .clock_period(Nanos::from_millis(500))
        .hierarchy(&hierarchy)
        .build()
        .expect("pipeline builds");
    for pid in [w1, w2, w3, stray] {
        papi.monitor(pid).expect("monitor");
    }
    papi.run_for(Nanos::from_secs(4)).expect("run");
    let outcome = papi.finish().expect("shutdown");

    // The whole ledger holds, and the root stream reconciles with the
    // plain machine aggregator (power above idle, windows, quality).
    hierarchy.assert_conserved(&outcome.reports);
    assert_eq!(hierarchy.ticks(), 8, "one audited flush per 500 ms tick");

    // One report per node per tick, interior nodes included.
    for node in [
        "tenant-a",
        "tenant-a/svc-web",
        "tenant-a/svc-db",
        "tenant-b",
        "tenant-b/svc-batch",
        UNGROUPED,
        ROOT,
    ] {
        assert_eq!(
            outcome.group_estimates(node).len(),
            8,
            "node {node} must report every tick"
        );
    }

    // Parents are the bit-exact sum of their children at every tick.
    let at = |node: &str, ts: Nanos| {
        outcome
            .reports
            .iter()
            .find(|r| r.timestamp == ts && matches!(&r.scope, Scope::Group(g) if &**g == node))
            .map(|r| r.power.as_f64())
            .unwrap_or_else(|| panic!("missing {node} at {ts:?}"))
    };
    for (ts, _) in outcome.group_estimates("tenant-a") {
        let parent = at("tenant-a", ts);
        let children = at("tenant-a/svc-web", ts) + at("tenant-a/svc-db", ts);
        assert_eq!(
            parent.to_bits(),
            children.to_bits(),
            "tenant-a at {ts:?}: {parent} W vs children {children} W"
        );
    }

    // The stray pid's watts landed in the catch-all, not nowhere.
    assert!(
        outcome
            .group_estimates(UNGROUPED)
            .iter()
            .any(|(_, w)| w.as_f64() > 0.0),
        "stray process must surface under __ungrouped__"
    );
}

/// Conservation keeps holding when fault windows knock the primary
/// formula out and the fallback serves degraded estimates — the root's
/// quality floor matches the machine aggregator's every tick.
#[test]
fn conservation_survives_degraded_quality() {
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    kernel.cgroup_create("tenant-a", 2048);
    let pid = kernel.spawn_in_cgroup(
        "web",
        "tenant-a/svc-web",
        vec![SteadyTask::boxed(WorkUnit::cpu_intensive(0.9))],
    );
    let plan = FaultPlan::from_windows(vec![FaultWindow {
        kind: FaultKind::CounterStall,
        start: Nanos::from_secs(2),
        end: Nanos::from_secs(60),
        magnitude: 0.0,
    }]);
    let formula = paper_formula();
    let hierarchy = Hierarchy::new(formula.idle_w());
    hierarchy.sync_cgroups(kernel.cgroups());
    let mut papi = PowerApi::builder(kernel)
        .formula(formula)
        .degrade_to(CpuLoadFormula::new(31.5, 12.0), Nanos::from_millis(1500))
        .fault_plan(plan)
        .report_to_memory()
        .quantum(Nanos::from_millis(2))
        .clock_period(Nanos::from_millis(500))
        .hierarchy(&hierarchy)
        .build()
        .expect("pipeline builds");
    papi.monitor(pid).expect("monitor");
    papi.run_for(Nanos::from_secs(6)).expect("run");
    let outcome = papi.finish().expect("shutdown");

    hierarchy.assert_conserved(&outcome.reports);
    let degraded = outcome
        .reports
        .iter()
        .filter(|r| {
            matches!(&r.scope, Scope::Group(g) if &**g == ROOT) && r.quality < Quality::Full
        })
        .count();
    assert!(degraded > 0, "the stall must degrade some root flushes");
}

/// Captures aggregate reports published on the bus.
struct Capture(Arc<Mutex<Vec<AggregateReport>>>);
impl Actor for Capture {
    fn handle(&mut self, msg: Message, _ctx: &Context) {
        if let Message::Aggregate(a) = msg {
            self.0.lock().expect("capture lock").push(a);
        }
    }
}

fn power(ts_ms: u64, pid: u32, w: f64) -> Message {
    Message::Power(PowerReport {
        timestamp: Nanos::from_millis(ts_ms),
        pid: Pid(pid),
        power: Watts(w),
        formula: "t",
        band_w: Watts(0.0),
        quality: Quality::Full,
        trace: TraceId::NONE,
    })
}

/// The churn regression: a group whose last pid dies mid-window must be
/// flushed at the next tick boundary — by any other group's traffic —
/// never held until shutdown.
#[test]
fn dying_process_never_leaves_a_stale_group_window() {
    let seen = Arc::new(Mutex::new(Vec::new()));
    let mut sys = ActorSystem::new();
    let agg = sys.spawn(
        "groups",
        Box::new(GroupAggregator::new(vec![
            (Pid(1), "vm-dying"),
            (Pid(2), "vm-survivor"),
        ])),
    );
    let sink = sys.spawn("sink", Box::new(Capture(seen.clone())));
    sys.bus().subscribe(Topic::Power, &agg);
    sys.bus().subscribe(Topic::Aggregate, &sink);

    // Tick 1: both groups active. Then pid 1 dies; tick 2 carries only
    // the survivor.
    sys.bus().publish(power(500, 1, 3.0));
    sys.bus().publish(power(500, 2, 2.0));
    sys.bus().publish(power(1000, 2, 2.5));

    // vm-dying's ts=500 window must flush NOW, forced by the survivor's
    // tick-2 report — long before shutdown.
    let flushed = wait_until(Duration::from_secs(5), || {
        seen.lock().expect("lock").iter().any(|a| {
            a.timestamp == Nanos::from_millis(500)
                && matches!(&a.scope, Scope::Group(g) if &**g == "vm-dying")
        })
    });
    assert!(
        flushed,
        "dead group's final window lingered in the window map: {:?}",
        seen.lock().expect("lock")
    );
    sys.shutdown();
    let seen = seen.lock().expect("lock");
    let dying: Vec<_> = seen
        .iter()
        .filter(|a| matches!(&a.scope, Scope::Group(g) if &**g == "vm-dying"))
        .collect();
    assert_eq!(dying.len(), 1, "exactly one flush for the dead group");
    assert_eq!(dying[0].power, Watts(3.0));
}

/// Same churn law one layer up: a hierarchy leaf whose pid died flushes
/// with the next tick and the ledger still conserves.
#[test]
fn dying_process_never_leaves_a_stale_hierarchy_leaf() {
    let hierarchy = Hierarchy::new(0.0);
    hierarchy.attach(Pid(1), "tenant-a/svc-dying");
    hierarchy.attach(Pid(2), "tenant-b/svc-survivor");

    let mut sys = ActorSystem::new();
    let agg = sys.spawn(
        "hierarchy",
        Box::new(HierarchyAggregator::new(hierarchy.clone())),
    );
    sys.bus().subscribe(Topic::Power, &agg);

    sys.bus().publish(power(500, 1, 4.0));
    sys.bus().publish(power(500, 2, 1.0));
    // Pid 1 dies between ticks — its reports simply stop; only the
    // survivor speaks at tick 2. (Membership detach is the supervisor's
    // asynchronous business and must not be needed for the flush.)
    sys.bus().publish(power(1000, 2, 1.5));

    // The ts=500 whole-tree window (including the dead leaf) must be in
    // the ledger before shutdown, flushed by the survivor's report.
    let flushed = wait_until(Duration::from_secs(5), || hierarchy.ticks() >= 1);
    assert!(flushed, "tick-1 window lingered past the tick-2 boundary");
    let first = &hierarchy.ledger()[0];
    assert_eq!(first.ts, Nanos::from_millis(500));
    assert_eq!(
        first.leaves["tenant-a/svc-dying"].power_w.to_bits(),
        4.0f64.to_bits(),
        "the dead pid's final watts are in its leaf, not lost"
    );
    sys.shutdown();
    hierarchy
        .conservation()
        .expect("ledger conserves after churn");
    assert_eq!(
        hierarchy.ticks(),
        2,
        "shutdown flushed the open tick-2 window"
    );
}
