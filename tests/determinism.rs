//! Reproducibility tests: the entire stack — simulation, measurement
//! noise, learning, estimation — must be a pure function of its seeds.
//! (Actor scheduling is concurrent, but message *content* and per-scope
//! ordering are deterministic; these tests pin that down.)

use powerapi_suite::os_sim::kernel::Kernel;
use powerapi_suite::os_sim::task::SteadyTask;
use powerapi_suite::powerapi::formula::per_freq::PerFrequencyFormula;
use powerapi_suite::powerapi::model::learn::{learn_model, LearnConfig};
use powerapi_suite::powerapi::model::power_model::PerFrequencyPowerModel;
use powerapi_suite::powerapi::runtime::{PowerApi, RunOutcome};
use powerapi_suite::simcpu::presets;
use powerapi_suite::simcpu::units::Nanos;
use powerapi_suite::simcpu::workunit::WorkUnit;
use powerapi_suite::workloads::specjbb::{self, SpecJbbConfig};

fn run_once(seed: u64) -> RunOutcome {
    let jbb = SpecJbbConfig {
        duration: Nanos::from_secs(20),
        threads: 2,
        seed,
        ..SpecJbbConfig::default()
    };
    let mut kernel = Kernel::new(presets::intel_i3_2120());
    let pid = kernel.spawn("jbb", specjbb::tasks(&jbb));
    let mut papi = PowerApi::builder(kernel)
        .formula(PerFrequencyFormula::new(
            PerFrequencyPowerModel::paper_i3_example(),
        ))
        .report_to_memory()
        .quantum(Nanos::from_millis(2))
        .build()
        .expect("pipeline builds");
    papi.monitor(pid).expect("monitor");
    papi.run_for(jbb.duration).expect("run");
    papi.finish().expect("shutdown")
}

#[test]
fn identical_seeds_identical_traces() {
    let a = run_once(7);
    let b = run_once(7);
    assert_eq!(a.meter, b.meter, "meter noise is seed-deterministic");
    assert_eq!(
        a.machine_estimates(),
        b.machine_estimates(),
        "estimates are deterministic"
    );
    assert_eq!(a.rapl, b.rapl);
}

#[test]
fn different_workload_seeds_differ() {
    let a = run_once(7);
    let b = run_once(8);
    assert_ne!(
        a.machine_estimates(),
        b.machine_estimates(),
        "the workload seed matters"
    );
}

#[test]
fn learning_is_deterministic() {
    let m1 = learn_model(presets::intel_i3_2120(), &LearnConfig::quick()).expect("learn");
    let m2 = learn_model(presets::intel_i3_2120(), &LearnConfig::quick()).expect("learn");
    assert_eq!(m1, m2);
    let mut cfg = LearnConfig::quick();
    cfg.sampling.seed ^= 0xFF;
    let m3 = learn_model(presets::intel_i3_2120(), &cfg).expect("learn");
    assert_ne!(m1, m3, "meter noise seed shifts the fit slightly");
}

#[test]
fn kernel_simulation_is_deterministic_without_any_seed() {
    // The simulation itself (no meters) uses no randomness at all.
    let run = || {
        let mut k = Kernel::new(presets::xeon_smt_turbo());
        k.spawn(
            "mixed",
            vec![
                SteadyTask::boxed(WorkUnit::cpu_intensive(0.9)),
                SteadyTask::boxed(WorkUnit::memory_intensive(131_072.0, 0.7)),
                SteadyTask::boxed(WorkUnit::mixed(0.5, 8_192.0, 0.5)),
            ],
        );
        let mut powers = Vec::new();
        for _ in 0..200 {
            powers.push(k.tick(Nanos::from_millis(1)).power);
        }
        (powers, k.machine().machine_energy())
    };
    assert_eq!(run(), run());
}
