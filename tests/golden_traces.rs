//! Golden-trace harness tests.
//!
//! The experiment binaries in `crates/bench` each record their key
//! deterministic metrics through `bench_suite::Golden`; the blessed
//! snapshots live in `tests/golden/*.golden`. Two layers of checking:
//!
//! 1. **Format validation** (always on): every committed golden file must
//!    parse — one `key value rel_tol` triple per line, `#` comments, no
//!    NaNs, no negative tolerances, no duplicate keys, and values must
//!    round-trip exactly through their `Display` form (the harness relies
//!    on shortest-round-trip formatting for exact comparisons).
//!
//! 2. **Drift detection** (`RUN_GOLDEN=1`): re-run every experiment binary
//!    with `--check` and fail if any metric drifted from its snapshot.
//!    This is minutes of work (full learning campaigns), so it is opt-in
//!    here and wired into CI as its own job.
//!
//! The root test package cannot depend on `bench-suite` (it would drag the
//! bench binaries into every `cargo test`), so layer 1 re-implements the
//! tiny parser and cross-checks it against the files the real harness
//! wrote.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn golden_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(golden_dir())
        .expect("tests/golden exists — bless with `cargo run -p bench-suite --bin e1_table1 -- --bless` etc.")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "golden"))
        .collect();
    files.sort();
    files
}

/// Mirror of `bench_suite::golden::parse` — `key value rel_tol` triples.
fn parse(text: &str) -> Result<Vec<(String, f64, f64)>, String> {
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() != 3 {
            return Err(format!("line {}: expected 3 tokens", lineno + 1));
        }
        let value: f64 = tokens[1]
            .parse()
            .map_err(|e| format!("line {}: bad value: {e}", lineno + 1))?;
        let tol: f64 = tokens[2]
            .parse()
            .map_err(|e| format!("line {}: bad tolerance: {e}", lineno + 1))?;
        if !value.is_finite() || !tol.is_finite() || tol < 0.0 {
            return Err(format!("line {}: non-finite or negative", lineno + 1));
        }
        entries.push((tokens[0].to_string(), value, tol));
    }
    Ok(entries)
}

#[test]
fn every_committed_golden_file_is_well_formed() {
    let files = golden_files();
    assert!(
        !files.is_empty(),
        "no .golden files in {} — the harness snapshots are part of the repo",
        golden_dir().display()
    );
    for path in &files {
        let text = std::fs::read_to_string(path).expect("readable golden file");
        let entries =
            parse(&text).unwrap_or_else(|e| panic!("{} is malformed: {e}", path.display()));
        assert!(
            !entries.is_empty(),
            "{} contains no metrics",
            path.display()
        );
        let mut seen = HashSet::new();
        for (key, value, _tol) in &entries {
            assert!(
                seen.insert(key.clone()),
                "{} lists `{key}` twice",
                path.display()
            );
            // The harness compares exact entries with `==` after a
            // parse round-trip, so Display(value) must parse back
            // bit-identically.
            let round: f64 = value.to_string().parse().expect("round-trip parse");
            assert_eq!(
                round.to_bits(),
                value.to_bits(),
                "{}: `{key}` does not round-trip through Display",
                path.display()
            );
        }
    }
}

#[test]
fn expected_experiments_have_snapshots() {
    let names: HashSet<String> = golden_files()
        .iter()
        .map(|p| p.file_stem().expect("stem").to_string_lossy().into_owned())
        .collect();
    for required in [
        "e1_table1",
        "e1_table1.quick",
        "e2_model",
        "e2_model.quick",
        "e3_figure3",
        "e3_figure3.quick",
        "e4_comparison",
        "e4_comparison.quick",
        "e5_selection",
        "e5_selection.quick",
        "e6_ablations",
        "e6_ablations.quick",
        "e7_chaos.quick",
        "e8_overhead.quick",
        "e9_model_health.quick",
        "e10_blackbox.quick",
        "e12_fleet.quick",
        "e13_tenants",
        "e13_tenants.quick",
        "e14_fleet_observe",
        "e14_fleet_observe.quick",
        "e15_adaptive",
        "e15_adaptive.quick",
    ] {
        assert!(
            names.contains(required),
            "missing snapshot tests/golden/{required}.golden (run the binary with --bless)"
        );
    }
}

/// Full drift check: re-run every experiment and compare against its
/// snapshot. Opt-in (`RUN_GOLDEN=1`) — this runs complete learning
/// campaigns and takes minutes. CI runs it as a dedicated job.
#[test]
fn golden_traces_match_when_requested() {
    if std::env::var("RUN_GOLDEN").as_deref() != Ok("1") {
        eprintln!("golden_traces_match_when_requested: skipped (set RUN_GOLDEN=1)");
        return;
    }
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let runs: &[(&str, &[&str])] = &[
        ("e1_table1", &["--check"]),
        ("e2_model", &["--check"]),
        ("e3_figure3", &["--check"]),
        ("e4_comparison", &["--check"]),
        ("e5_selection", &["--check"]),
        ("e6_ablations", &["--check"]),
        ("e1_table1", &["--quick", "--check"]),
        ("e2_model", &["--quick", "--check"]),
        ("e3_figure3", &["--quick", "--check"]),
        ("e4_comparison", &["--quick", "--check"]),
        ("e5_selection", &["--quick", "--check"]),
        ("e6_ablations", &["--quick", "--check"]),
        ("e7_chaos", &["--quick", "--check"]),
        ("e8_overhead", &["--quick", "--check"]),
        ("e9_model_health", &["--quick", "--check"]),
        ("e10_blackbox", &["--quick", "--check"]),
        ("e12_fleet", &["--quick", "--check"]),
        ("e13_tenants", &["--quick", "--check"]),
        ("e14_fleet_observe", &["--quick", "--check"]),
        ("e15_adaptive", &["--quick", "--check"]),
    ];
    for (bin, args) in runs {
        eprintln!("golden: checking {bin} {}", args.join(" "));
        let status = std::process::Command::new("cargo")
            .current_dir(repo)
            .args(["run", "--release", "-p", "bench-suite", "--bin", bin, "--"])
            .args(*args)
            .status()
            .expect("spawn cargo run");
        assert!(
            status.success(),
            "{bin} drifted from its golden snapshot (exit {status})"
        );
    }
}
